"""Unit tests for influence maximisation."""

import math

import numpy as np
import pytest

from repro.apps.influence_max import (
    embedding_edge_probabilities,
    embedding_pruned_candidates,
    embedding_seed_selection,
    greedy_influence_maximization,
    ris_influence_maximization,
    ris_pruned_influence_maximization,
)
from repro.core.embeddings import InfluenceEmbedding
from repro.data.graph import SocialGraph
from repro.data.synthetic import SyntheticSocialDataset
from repro.diffusion.montecarlo import spread_with_standard_error
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import EvaluationError
from repro.sketch.rrsets import RRGenerator, RRSketchPool


@pytest.fixture
def star_probs() -> EdgeProbabilities:
    """Node 0 reaches {1..4} deterministically; others reach nobody."""
    graph = SocialGraph(6, [(0, 1), (0, 2), (0, 3), (0, 4), (5, 4)])
    return EdgeProbabilities.from_dict(
        graph, {(0, 1): 1.0, (0, 2): 1.0, (0, 3): 1.0, (0, 4): 1.0, (5, 4): 1.0}
    )


class TestGreedy:
    def test_picks_hub_first(self, star_probs):
        result = greedy_influence_maximization(star_probs, 1, num_runs=20, seed=0)
        assert result.seeds == (0,)
        assert result.expected_spread == pytest.approx(5.0)

    def test_second_seed_adds_marginal_value(self, star_probs):
        result = greedy_influence_maximization(star_probs, 2, num_runs=20, seed=0)
        assert result.seeds[0] == 0
        # 5 is the only node adding coverage beyond the hub's reach...
        # actually 5 adds itself (4 already covered): gain 1, same as
        # any uncovered singleton; the chosen one must add spread 1.
        assert result.marginal_gains[1] == pytest.approx(1.0)

    def test_gains_non_increasing(self, star_probs):
        result = greedy_influence_maximization(star_probs, 3, num_runs=20, seed=0)
        gains = list(result.marginal_gains)
        assert gains == sorted(gains, reverse=True)

    def test_candidate_pool_respected(self, star_probs):
        result = greedy_influence_maximization(
            star_probs, 1, num_runs=20, seed=0, candidates=[1, 2]
        )
        assert result.seeds[0] in (1, 2)

    def test_invalid_inputs(self, star_probs):
        with pytest.raises(EvaluationError):
            greedy_influence_maximization(star_probs, 99, num_runs=5)
        with pytest.raises(EvaluationError):
            greedy_influence_maximization(
                star_probs, 2, num_runs=5, candidates=[0]
            )
        with pytest.raises(ValueError):
            greedy_influence_maximization(star_probs, 0, num_runs=5)


class TestEmbeddingSelection:
    def test_high_influence_user_selected(self):
        source = np.zeros((5, 2))
        source[3] = [5.0, 0.0]  # strongly influences the first audience
        target = np.zeros((5, 2))
        target[[0, 1]] = [1.0, 0.0]  # audience one
        target[[2, 4]] = [0.0, 1.0]  # audience two
        emb = InfluenceEmbedding(source, target, np.zeros(5), np.zeros(5))
        result = embedding_seed_selection(emb, 1)
        assert result.seeds == (3,)

    def test_uniform_row_treated_as_calibration(self):
        """A user scoring everyone identically has no usable signal —
        the per-source centring removes the constant offset."""
        source = np.zeros((4, 2))
        source[0] = [9.0, 9.0]  # uniform against all-ones targets
        source[1] = [1.0, -1.0]  # heterogeneous
        target = np.ones((4, 2))
        target[2] = [1.0, -1.0]
        emb = InfluenceEmbedding(source, target, np.zeros(4), np.zeros(4))
        result = embedding_seed_selection(emb, 1)
        assert result.seeds == (1,)

    def test_diversity_penalty_spreads_seeds(self):
        # Users 0/1 influence the same direction; 2 a different one.
        source = np.array([[4.0, 0.0], [3.9, 0.0], [0.0, 3.0], [0.0, 0.1]])
        target = np.eye(2)[[0, 0, 1, 1]].astype(float)
        emb = InfluenceEmbedding(source, target, np.zeros(4), np.zeros(4))
        result = embedding_seed_selection(emb, 2, coverage_penalty=2.0)
        assert result.seeds[0] == 0
        assert result.seeds[1] == 2  # not the redundant user 1

    def test_no_duplicates(self):
        rng = np.random.default_rng(0)
        emb = InfluenceEmbedding(
            rng.normal(size=(10, 4)),
            rng.normal(size=(10, 4)),
            np.zeros(10),
            np.zeros(10),
        )
        result = embedding_seed_selection(emb, 5)
        assert len(set(result.seeds)) == 5

    def test_invalid_inputs(self):
        emb = InfluenceEmbedding(
            np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(3), np.zeros(3)
        )
        with pytest.raises(EvaluationError):
            embedding_seed_selection(emb, 4)
        with pytest.raises(EvaluationError):
            embedding_seed_selection(emb, 1, coverage_penalty=-1.0)


class TestGreedyMatchesBruteForce:
    """CELF lazy greedy must equal exhaustive greedy on a planted graph.

    Every edge is certain (p = 1.0), so the Monte-Carlo spread estimate
    is exact regardless of seed or run count and the comparison is free
    of simulation noise.
    """

    @pytest.fixture
    def layered_probs(self) -> EdgeProbabilities:
        edges = [
            (0, 1), (0, 2), (0, 3), (0, 4),  # big hub
            (5, 6), (5, 7), (6, 8),          # chain-y hub
            (9, 10),                          # small pair
        ]
        graph = SocialGraph(12, edges)
        return EdgeProbabilities.from_dict(graph, {e: 1.0 for e in edges})

    @staticmethod
    def _exact_spread(probabilities, seeds):
        graph = probabilities.graph
        indptr, indices = graph.out_csr()
        reached = set(int(s) for s in seeds)
        frontier = list(reached)
        while frontier:
            node = frontier.pop()
            for nxt in indices[indptr[node] : indptr[node + 1]]:
                if int(nxt) not in reached:
                    reached.add(int(nxt))
                    frontier.append(int(nxt))
        return len(reached)

    def test_celf_equals_exhaustive_greedy(self, layered_probs):
        num_seeds = 4
        chosen, gains = [], []
        current = 0
        for _ in range(num_seeds):
            best_node, best_gain = None, -1
            for node in range(layered_probs.graph.num_nodes):
                if node in chosen:
                    continue
                gain = self._exact_spread(layered_probs, chosen + [node]) - current
                if gain > best_gain:
                    best_node, best_gain = node, gain
            chosen.append(best_node)
            gains.append(best_gain)
            current += best_gain
        result = greedy_influence_maximization(
            layered_probs, num_seeds, num_runs=10, seed=0
        )
        assert result.seeds == tuple(chosen)
        assert result.marginal_gains == pytest.approx(tuple(gains))
        assert result.expected_spread == pytest.approx(current)


class TestRIS:
    @pytest.fixture
    def planted_probs(self) -> EdgeProbabilities:
        data = SyntheticSocialDataset.digg_like(
            num_users=150, num_items=25, seed=8
        )
        return data.planted.edge_probabilities

    def test_picks_hub_first(self, star_probs):
        result = ris_influence_maximization(star_probs, 1, seed=0)
        assert result.seeds == (0,)
        # Certain star: sigma({0}) = 5 exactly; the sketch estimate has
        # sampling error but the pool is large enough to land close.
        assert result.expected_spread == pytest.approx(5.0, rel=0.1)

    def test_same_seed_identical_selection(self, planted_probs):
        a = ris_influence_maximization(planted_probs, 5, seed=3)
        b = ris_influence_maximization(planted_probs, 5, seed=3)
        assert a.seeds == b.seeds
        assert a.expected_spread == b.expected_spread

    def test_candidates_respected(self, planted_probs):
        candidates = [4, 8, 15, 16, 23, 42]
        result = ris_influence_maximization(
            planted_probs, 3, seed=0, candidates=candidates
        )
        assert all(s in candidates for s in result.seeds)

    def test_marginal_gains_non_increasing(self, planted_probs):
        result = ris_influence_maximization(planted_probs, 6, seed=1)
        gains = list(result.marginal_gains)
        assert gains == sorted(gains, reverse=True)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fixed_set_estimate_agrees_with_monte_carlo(
        self, planted_probs, seed
    ):
        """RIS and MC estimate the same sigma(S) for *fixed* seed sets.

        Both estimators carry sampling error, so agreement is asserted
        within 4 combined standard errors (the RIS coverage count is a
        binomial over independent sketches; 3 SEs trips on ordinary
        fluctuations — seed 2 lands at 3.3 SEs while an exact live-edge
        enumeration confirms both estimators are unbiased).  Selected-on-
        the-pool seed sets would not satisfy this — their coverage is
        upward-biased — which is exactly why the comparison uses
        pre-chosen sets.
        """
        n = planted_probs.graph.num_nodes
        pool = RRSketchPool(
            n, *RRGenerator(planted_probs, seed=seed).generate(40_000)
        )
        rng = np.random.default_rng(seed)
        fixed_seeds = rng.choice(n, size=5, replace=False).tolist()
        mc, mc_se = spread_with_standard_error(
            planted_probs, fixed_seeds, num_runs=4000, seed=seed + 100
        )
        ris = pool.spread_estimate(fixed_seeds)
        fraction = ris / n
        ris_se = n * math.sqrt(
            fraction * (1.0 - fraction) / pool.num_sketches
        )
        combined = math.sqrt(mc_se**2 + ris_se**2)
        assert abs(ris - mc) <= 4.0 * combined, (ris, mc, combined)

    def test_invalid_inputs(self, star_probs):
        with pytest.raises(EvaluationError):
            ris_influence_maximization(star_probs, 99, seed=0)
        with pytest.raises(EvaluationError):
            ris_influence_maximization(
                star_probs, 3, seed=0, candidates=[0, 1]
            )
        with pytest.raises(ValueError):
            ris_influence_maximization(star_probs, 0, seed=0)


class TestRISPruned:
    @pytest.fixture
    def planted_probs(self) -> EdgeProbabilities:
        data = SyntheticSocialDataset.digg_like(
            num_users=120, num_items=20, seed=4
        )
        return data.planted.edge_probabilities

    @pytest.fixture
    def embedding(self, planted_probs) -> InfluenceEmbedding:
        return InfluenceEmbedding.initialize(
            planted_probs.graph.num_nodes, 8, seed=0
        )

    def test_seeds_come_from_pruned_pool(self, planted_probs, embedding):
        num_candidates = 24
        result = ris_pruned_influence_maximization(
            planted_probs, embedding, 4, num_candidates=num_candidates, seed=5
        )
        pruned = set(
            embedding_pruned_candidates(embedding, num_candidates).tolist()
        )
        assert set(result.seeds) <= pruned

    def test_same_seed_identical_selection(self, planted_probs, embedding):
        a = ris_pruned_influence_maximization(
            planted_probs, embedding, 3, seed=2
        )
        b = ris_pruned_influence_maximization(
            planted_probs, embedding, 3, seed=2
        )
        assert a.seeds == b.seeds

    def test_pruned_candidates_shape(self, embedding):
        candidates = embedding_pruned_candidates(embedding, 10)
        assert candidates.shape == (10,)
        assert np.unique(candidates).shape == (10,)
        assert np.all(np.diff(candidates) > 0)  # sorted ids

    def test_embedding_size_mismatch_rejected(self, planted_probs):
        wrong = InfluenceEmbedding.initialize(7, 4, seed=0)
        with pytest.raises(EvaluationError):
            ris_pruned_influence_maximization(planted_probs, wrong, 2, seed=0)


class TestEmbeddingEdgeProbabilities:
    @pytest.fixture
    def graph(self) -> SocialGraph:
        return SocialGraph(5, [(0, 1), (0, 2), (1, 3), (2, 4), (3, 0)])

    @pytest.fixture
    def embedding(self) -> InfluenceEmbedding:
        rng = np.random.default_rng(3)
        return InfluenceEmbedding(
            rng.normal(size=(5, 3)),
            rng.normal(size=(5, 3)),
            rng.normal(size=5),
            rng.normal(size=5),
        )

    def test_mean_matches_target(self, graph, embedding):
        probs = embedding_edge_probabilities(graph=graph, embedding=embedding,
                                             mean_probability=0.07)
        assert probs.values.mean() == pytest.approx(0.07, abs=1e-4)
        assert probs.values.min() >= 0.0
        assert probs.values.max() <= 1.0

    def test_preserves_centered_score_order(self, graph, embedding):
        probs = embedding_edge_probabilities(embedding, graph, 0.2)
        pairwise = (
            embedding.source @ embedding.target.T
            + embedding.source_bias[:, None]
            + embedding.target_bias[None, :]
        )
        medians = np.median(pairwise, axis=1)
        edges = graph.edge_array()
        centered = [
            pairwise[u, v] - medians[u] for u, v in edges
        ]
        order_scores = np.argsort(centered)
        order_probs = np.argsort(probs.values)
        assert np.array_equal(order_scores, order_probs)

    def test_degenerate_targets(self, graph, embedding):
        zeros = embedding_edge_probabilities(embedding, graph, 0.0)
        ones = embedding_edge_probabilities(embedding, graph, 1.0)
        assert np.all(zeros.values == 0.0)
        assert np.all(ones.values == 1.0)

    def test_empty_graph(self, embedding):
        graph = SocialGraph(5, [])
        probs = embedding_edge_probabilities(embedding, graph, 0.1)
        assert probs.values.shape == (0,)

    def test_invalid_mean(self, graph, embedding):
        with pytest.raises(ValueError):
            embedding_edge_probabilities(embedding, graph, 1.5)

    def test_stable_sigmoid_no_overflow_for_extreme_scores(self, graph):
        """Regression: the naive ``exp(-(x - shift))`` overflowed to inf
        with RuntimeWarnings for strongly negative centred scores."""
        import warnings

        rng = np.random.default_rng(0)
        extreme = InfluenceEmbedding(
            1000.0 * rng.normal(size=(5, 3)),
            1000.0 * rng.normal(size=(5, 3)),
            1000.0 * rng.normal(size=5),
            1000.0 * rng.normal(size=5),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            probs = embedding_edge_probabilities(extreme, graph, 0.05)
        assert np.all(np.isfinite(probs.values))
        assert np.all((probs.values >= 0.0) & (probs.values <= 1.0))

    def test_stable_sigmoid_matches_naive_in_safe_range(self):
        from repro.apps.influence_max import _stable_sigmoid

        x = np.linspace(-30, 30, 101)
        np.testing.assert_allclose(
            _stable_sigmoid(x), 1.0 / (1.0 + np.exp(-x)), rtol=1e-14
        )

    def test_blocked_calibration_invariant_to_block_size(self, graph, embedding):
        """Streamed per-source medians are bitwise block-size-invariant."""
        probs = embedding_edge_probabilities(embedding, graph, 0.1, block_size=2)
        default = embedding_edge_probabilities(embedding, graph, 0.1)
        np.testing.assert_array_equal(probs.values, default.values)


class TestBlockedSeedSelection:
    @pytest.fixture
    def embedding(self) -> InfluenceEmbedding:
        rng = np.random.default_rng(17)
        return InfluenceEmbedding(
            rng.normal(size=(25, 4)),
            rng.normal(size=(25, 4)),
            rng.normal(size=25),
            rng.normal(size=25),
        )

    def test_block_size_does_not_change_selection(self, embedding):
        reference = embedding_seed_selection(embedding, 5)
        for block_size in (1, 3, 64):
            got = embedding_seed_selection(embedding, 5, block_size=block_size)
            assert got.seeds == reference.seeds
            assert got.marginal_gains == pytest.approx(reference.marginal_gains)
