"""Unit tests for the citation case study (Table VI pipeline)."""

import pytest

from repro.apps.citation_study import (
    pairs_to_contexts,
    run_case_study,
    train_conventional_model,
    train_embedding_model,
)
from repro.data.citation import CitationConfig, CitationDataset, CitationPair


@pytest.fixture(scope="module")
def dataset() -> CitationDataset:
    config = CitationConfig(num_authors=60, num_papers=80, mean_references=4.0)
    return CitationDataset.generate(config, seed=5)


class TestHelpers:
    def test_pairs_to_contexts(self):
        pairs = [CitationPair(0, 1, 3), CitationPair(2, 3, 4)]
        contexts = pairs_to_contexts(pairs)
        assert contexts[0].user == 0
        assert contexts[0].local == (1,)
        assert contexts[0].global_ == ()
        assert contexts[1].item == 4

    def test_conventional_model_mle(self):
        pairs = [
            CitationPair(0, 1, 1),
            CitationPair(0, 1, 2),
            CitationPair(0, 2, 3),
        ]
        probs = train_conventional_model(pairs, num_authors=3)
        # A_{0->1} = 2, A_0 = 3.
        assert probs.get(0, 1) == pytest.approx(2 / 3)
        assert probs.get(0, 2) == pytest.approx(1 / 3)

    def test_embedding_model_learns_pairs(self):
        pairs = [CitationPair(0, 1, t) for t in range(30)]
        pairs += [CitationPair(2, 3, t) for t in range(30)]
        emb = train_embedding_model(pairs, num_authors=5, dim=8, epochs=20, seed=0)
        assert emb.score(0, 1) > emb.score(0, 4)


class TestCaseStudy:
    def test_end_to_end(self, dataset):
        result = run_case_study(
            dataset,
            mc_runs=50,
            embedding_dim=16,
            embedding_epochs=5,
            seed=0,
        )
        assert 0.0 <= result.embedding_precision <= 1.0
        assert 0.0 <= result.conventional_precision <= 1.0
        assert result.num_test_authors > 0
        assert len(result.showcase) == 3

    def test_embedding_generalizes_to_unseen_pairs(self):
        """The mechanism behind the paper's Table VI gap.

        Two author communities; training pairs connect every author to
        *most* same-community authors, test pairs are the held-out
        same-community pairs.  The conventional model can only reach
        observed influence edges, so its top-k on unseen followers is
        weak; the embedding must place same-community authors close and
        recover them.
        """
        pairs = []
        communities = [list(range(0, 10)), list(range(10, 20))]
        time = 0
        for community in communities:
            for source in community:
                for target in community:
                    if source != target:
                        pairs.append(CitationPair(source, target, time))
                        time += 1
        rng = __import__("numpy").random.default_rng(0)
        order = rng.permutation(len(pairs))
        train = [pairs[i] for i in order[: int(0.7 * len(pairs))]]
        held_out = [pairs[i] for i in order[int(0.7 * len(pairs)) :]]

        emb = train_embedding_model(
            train, num_authors=20, dim=8, epochs=60, learning_rate=0.05, seed=0
        )
        # For each held-out pair the target must rank above a random
        # cross-community author most of the time.
        wins = 0
        for pair in held_out:
            same = emb.score(pair.source, pair.target)
            other_community = 10 if pair.source < 10 else 0
            cross = emb.score(pair.source, other_community)
            wins += int(same > cross)
        assert wins / len(held_out) > 0.8

    def test_showcase_entries_consistent(self, dataset):
        result = run_case_study(
            dataset, mc_runs=30, embedding_dim=8, embedding_epochs=3, seed=0
        )
        for row in result.showcase:
            assert len(row.embedding_top10) == 10
            assert len(row.conventional_top10) == 10
            assert row.author not in row.embedding_top10
            assert 0 <= row.embedding_hits <= 10
