"""Unit tests for the from-scratch t-SNE implementation."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.utils.rng import ensure_rng
from repro.viz.tsne import (
    TSNEConfig,
    kl_divergence,
    pairwise_squared_distances,
    tsne,
)


class TestPairwiseDistances:
    def test_matches_manual(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = pairwise_squared_distances(points)
        assert distances[0, 1] == pytest.approx(25.0)
        assert distances[1, 0] == pytest.approx(25.0)
        assert distances[0, 0] == 0.0

    def test_non_negative(self):
        rng = ensure_rng(0)
        points = rng.normal(size=(20, 5))
        distances = pairwise_squared_distances(points)
        assert np.all(distances >= 0)
        assert np.allclose(distances, distances.T)


class TestTSNE:
    @pytest.fixture(scope="class")
    def clustered_points(self) -> np.ndarray:
        rng = ensure_rng(1)
        cluster_a = rng.normal(loc=0.0, scale=0.3, size=(15, 10))
        cluster_b = rng.normal(loc=6.0, scale=0.3, size=(15, 10))
        return np.vstack([cluster_a, cluster_b])

    def test_output_shape_and_finiteness(self, clustered_points):
        layout = tsne(
            clustered_points,
            TSNEConfig(num_iterations=150, perplexity=10),
            seed=0,
        )
        assert layout.shape == (30, 2)
        assert np.all(np.isfinite(layout))

    def test_separates_clusters(self, clustered_points):
        layout = tsne(
            clustered_points,
            TSNEConfig(num_iterations=300, perplexity=10),
            seed=0,
        )
        centroid_a = layout[:15].mean(axis=0)
        centroid_b = layout[15:].mean(axis=0)
        within_a = np.linalg.norm(layout[:15] - centroid_a, axis=1).mean()
        between = np.linalg.norm(centroid_a - centroid_b)
        assert between > 2 * within_a

    def test_centered_output(self, clustered_points):
        layout = tsne(
            clustered_points, TSNEConfig(num_iterations=100), seed=0
        )
        assert np.allclose(layout.mean(axis=0), 0.0, atol=1e-8)

    def test_deterministic_under_seed(self, clustered_points):
        config = TSNEConfig(num_iterations=50)
        a = tsne(clustered_points, config, seed=3)
        b = tsne(clustered_points, config, seed=3)
        assert np.array_equal(a, b)

    def test_too_few_points_rejected(self):
        with pytest.raises(EvaluationError, match="at least 4"):
            tsne(np.zeros((3, 5)))

    def test_non_matrix_rejected(self):
        with pytest.raises(EvaluationError, match="2-D"):
            tsne(np.zeros(10))

    def test_three_components(self, clustered_points):
        layout = tsne(
            clustered_points,
            TSNEConfig(num_iterations=50),
            seed=0,
            num_components=3,
        )
        assert layout.shape == (30, 3)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TSNEConfig(perplexity=0)
        with pytest.raises(ValueError):
            TSNEConfig(num_iterations=0)


class TestKL:
    def test_kl_non_negative_and_better_for_real_layout(self):
        rng = ensure_rng(1)
        points = np.vstack(
            [
                rng.normal(0.0, 0.3, size=(10, 6)),
                rng.normal(5.0, 0.3, size=(10, 6)),
            ]
        )
        good = tsne(points, TSNEConfig(num_iterations=250, perplexity=8), seed=0)
        random_layout = rng.normal(size=(20, 2))
        assert kl_divergence(points, good, perplexity=8) >= 0
        assert kl_divergence(points, good, perplexity=8) < kl_divergence(
            points, random_layout, perplexity=8
        )
