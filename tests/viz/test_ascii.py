"""Unit tests for ASCII chart rendering."""

import pytest

from repro.errors import EvaluationError
from repro.viz.ascii import line_chart_text, loglog_scatter_text, sorted_series


class TestLogLogScatter:
    def test_renders_grid(self):
        histogram = {1: 100, 2: 40, 4: 15, 8: 6, 16: 2, 64: 1}
        text = loglog_scatter_text(histogram, width=50, height=12)
        lines = text.splitlines()
        assert len(lines) == 13  # grid + x-axis labels
        assert "*" in text
        assert "|" in text and "-" in text

    def test_power_law_descends(self):
        """A descending power law puts marks top-left and bottom-right."""
        histogram = {1: 1000, 10: 100, 100: 10, 1000: 1}
        text = loglog_scatter_text(histogram, width=40, height=10)
        lines = text.splitlines()[:-1]
        first_star_row = next(i for i, l in enumerate(lines) if "*" in l)
        last_star_row = max(i for i, l in enumerate(lines) if "*" in l)
        first_star_col = lines[first_star_row].index("*")
        last_star_col = lines[last_star_row].rindex("*")
        assert first_star_row < last_star_row  # top before bottom
        assert first_star_col < last_star_col  # left before right

    def test_zero_entries_ignored(self):
        text = loglog_scatter_text({0: 5, 1: 10, 2: 3})
        assert "*" in text

    def test_too_few_points_rejected(self):
        with pytest.raises(EvaluationError):
            loglog_scatter_text({1: 5})


class TestLineChart:
    def test_renders_multiple_series(self):
        text = line_chart_text(
            {
                "digg": {0.0: 0.7, 1.0: 0.9, 2.0: 1.0},
                "flickr": {0.0: 0.5, 1.0: 0.8, 2.0: 1.0},
            },
            width=40,
            height=10,
        )
        assert "d" in text
        assert "f" in text
        assert "legend:" in text

    def test_single_series(self):
        text = line_chart_text({"x": {1.0: 2.0, 2.0: 4.0}})
        assert "x=x" in text

    def test_flat_series_handled(self):
        text = line_chart_text({"c": {0.0: 1.0, 5.0: 1.0}})
        assert "c" in text

    def test_too_few_points_rejected(self):
        with pytest.raises(EvaluationError):
            line_chart_text({"a": {1.0: 1.0}})


class TestSortedSeries:
    def test_coerces_and_sorts(self):
        series = sorted_series({3: 0.5, 1: 0.1})
        assert list(series) == [1.0, 3.0]
        assert series[3.0] == 0.5
