"""Unit tests for the quantified Fig 6 pipeline."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.utils.rng import ensure_rng
from repro.viz.embedding_plot import (
    layout_to_text,
    pair_proximity,
    visualization_report,
)
from repro.viz.tsne import TSNEConfig


class TestPairProximity:
    def test_close_pair_low_percentile(self):
        layout = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [9.0, -3.0]])
        index = {10: 0, 11: 1, 12: 2, 13: 3}
        percentiles = pair_proximity(layout, index, [(10, 11)])
        assert percentiles[0] == 0.0  # the closest pair of all

    def test_far_pair_high_percentile(self):
        layout = np.array([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [50.0, 50.0]])
        index = {0: 0, 1: 1, 2: 2, 3: 3}
        percentiles = pair_proximity(layout, index, [(0, 3)])
        assert percentiles[0] > 0.4

    def test_unknown_node_rejected(self):
        layout = np.zeros((2, 2))
        with pytest.raises(EvaluationError, match="missing"):
            pair_proximity(layout, {0: 0, 1: 1}, [(0, 9)])

    def test_empty_pairs_rejected(self):
        with pytest.raises(EvaluationError):
            pair_proximity(np.zeros((2, 2)), {0: 0, 1: 1}, [])


class TestVisualizationReport:
    @pytest.fixture(scope="class")
    def vectors(self) -> np.ndarray:
        rng = ensure_rng(0)
        vectors = rng.normal(size=(30, 8))
        # Make pair (0, 1) nearly identical so it must land close.
        vectors[1] = vectors[0] + 0.01 * rng.normal(size=8)
        return vectors

    def test_report_shapes(self, vectors):
        pairs = [(0, 1), (2, 3), (4, 5), (6, 7)]
        report = visualization_report(
            vectors, pairs, highlight=2,
            tsne_config=TSNEConfig(num_iterations=120, perplexity=5), seed=0,
        )
        assert report.layout.shape[1] == 2
        assert len(report.highlighted_pairs) == 2
        assert report.pair_percentiles.shape == (2,)
        assert 0.0 <= report.mean_pair_percentile <= 1.0

    def test_identical_vectors_land_close(self, vectors):
        pairs = [(0, 1)] + [(i, i + 1) for i in range(2, 28, 2)]
        report = visualization_report(
            vectors, pairs, highlight=1,
            tsne_config=TSNEConfig(num_iterations=250, perplexity=5), seed=0,
        )
        assert report.pair_percentiles[0] < 0.2

    def test_nodes_deduplicated(self, vectors):
        report = visualization_report(
            vectors, [(0, 1), (1, 2), (2, 0), (3, 4)], highlight=1,
            tsne_config=TSNEConfig(num_iterations=60, perplexity=2), seed=0,
        )
        assert len(report.node_ids) == 5

    def test_empty_pairs_rejected(self, vectors):
        with pytest.raises(EvaluationError):
            visualization_report(vectors, [], highlight=1)

    def test_bad_highlight_rejected(self, vectors):
        with pytest.raises(EvaluationError):
            visualization_report(vectors, [(0, 1)], highlight=0)


class TestAsciiLayout:
    def test_renders_grid(self):
        rng = ensure_rng(0)
        vectors = rng.normal(size=(12, 6))
        report = visualization_report(
            vectors, [(0, 1), (2, 3)], highlight=2,
            tsne_config=TSNEConfig(num_iterations=60, perplexity=3), seed=0,
        )
        text = layout_to_text(report, width=40, height=12)
        lines = text.splitlines()
        assert len(lines) == 12
        assert all(len(line) == 40 for line in lines)
        assert "0" in text and "1" in text
