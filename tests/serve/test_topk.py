"""Blocked top-k correctness: bitwise equality with a brute-force scan.

The acceptance contract of the serving layer: for any block size, the
blocked engine's indices *and* scores are bitwise-identical to a naive
full-scan argsort over the same deterministic scoring kernel, for both
query directions, across ``k ∈ {1, 10, num_users}``, including
embeddings where the bias terms dominate the dot products.
"""

import numpy as np
import pytest

from repro.core.embeddings import InfluenceEmbedding
from repro.errors import ServingError
from repro.serve import (
    TopKEngine,
    aggregated_scores,
    augment_sources,
    augment_targets,
    iter_source_rows,
    score_block,
)

NUM_USERS = 97


def random_embedding(seed: int, bias_scale: float = 1.0) -> InfluenceEmbedding:
    rng = np.random.default_rng(seed)
    return InfluenceEmbedding(
        rng.normal(size=(NUM_USERS, 5)),
        rng.normal(size=(NUM_USERS, 5)),
        bias_scale * rng.normal(size=NUM_USERS),
        bias_scale * rng.normal(size=NUM_USERS),
    )


def brute_force_topk(embedding, user, k, direction):
    """Naive reference: full scan + stable argsort, ties to low id."""
    if direction == "influenced":
        queries = augment_sources(embedding, [user])
        database = augment_targets(embedding)
    else:
        queries = augment_targets(embedding, [user])
        database = augment_sources(embedding)
    scores = score_block(queries, database)[0]
    order = np.lexsort((np.arange(scores.shape[0]), -scores))[:k]
    return order, scores[order]


class TestBlockedTopKProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("bias_scale", [1.0, 50.0])
    @pytest.mark.parametrize("k", [1, 10, NUM_USERS])
    @pytest.mark.parametrize("block_size", [1, 13, 64, NUM_USERS, 4096])
    def test_matches_brute_force_bitwise(self, seed, bias_scale, k, block_size):
        embedding = random_embedding(seed, bias_scale)
        engine = TopKEngine(embedding, block_size=block_size)
        for direction in ("influenced", "influencers"):
            for user in (0, 7, NUM_USERS - 1):
                result = (
                    engine.top_influenced(user, k)
                    if direction == "influenced"
                    else engine.top_influencers(user, k)
                )
                ref_idx, ref_scores = brute_force_topk(
                    embedding, user, k, direction
                )
                np.testing.assert_array_equal(result.indices, ref_idx)
                np.testing.assert_array_equal(result.scores, ref_scores)

    def test_bias_dominated_ranking_follows_target_bias(self):
        """With zero embeddings, top-influenced is ordered purely by b̃."""
        zeros = np.zeros((NUM_USERS, 3))
        rng = np.random.default_rng(5)
        target_bias = rng.normal(size=NUM_USERS)
        embedding = InfluenceEmbedding(
            zeros, zeros.copy(), np.zeros(NUM_USERS), target_bias
        )
        result = TopKEngine(embedding, block_size=10).top_influenced(0, 5)
        expected = np.lexsort((np.arange(NUM_USERS), -target_bias))[:5]
        np.testing.assert_array_equal(result.indices, expected)

    def test_exact_ties_break_to_lower_id_for_any_blocking(self):
        """All-equal scores: the top-k must be [0, 1, ..., k-1] always."""
        embedding = InfluenceEmbedding(
            np.ones((NUM_USERS, 2)),
            np.ones((NUM_USERS, 2)),
            np.zeros(NUM_USERS),
            np.zeros(NUM_USERS),
        )
        for block_size in (1, 7, NUM_USERS):
            result = TopKEngine(embedding, block_size=block_size).top_influenced(
                3, 6
            )
            np.testing.assert_array_equal(result.indices, np.arange(6))


class TestBatchedVariants:
    def test_batched_equals_single_bitwise(self):
        embedding = random_embedding(3)
        engine = TopKEngine(embedding, block_size=16)
        users = [0, 11, 42, 96]
        for direction in ("influenced", "influencers"):
            batch = (
                engine.top_influenced_batch(users, 9)
                if direction == "influenced"
                else engine.top_influencers_batch(users, 9)
            )
            assert batch.indices.shape == (len(users), 9)
            for row, user in enumerate(users):
                single = (
                    engine.top_influenced(user, 9)
                    if direction == "influenced"
                    else engine.top_influencers(user, 9)
                )
                np.testing.assert_array_equal(batch.indices[row], single.indices)
                np.testing.assert_array_equal(batch.scores[row], single.scores)

    def test_validation(self):
        engine = TopKEngine(random_embedding(0))
        with pytest.raises(ServingError):
            engine.top_influenced(0, NUM_USERS + 1)
        with pytest.raises(ValueError):
            engine.top_influenced(0, 0)
        with pytest.raises(ServingError):
            engine.top_influenced(NUM_USERS, 3)
        with pytest.raises(ServingError):
            engine.top_influenced_batch([], 3)


class TestScoringHelpers:
    def test_scores_match_embedding_score(self):
        """The augmented kernel agrees with Eq. 7 scoring to rounding."""
        embedding = random_embedding(8)
        queries = augment_sources(embedding, [4])
        database = augment_targets(embedding)
        scores = score_block(queries, database)[0]
        expected = [embedding.score(4, v) for v in range(NUM_USERS)]
        np.testing.assert_allclose(scores, expected, rtol=1e-12)

    def test_iter_source_rows_reassembles_identically(self):
        embedding = random_embedding(9)
        full = score_block(
            augment_sources(embedding), augment_targets(embedding)
        )
        for block_size in (1, 17, 1024):
            rows = np.empty_like(full)
            for users, chunk in iter_source_rows(
                embedding, block_size=block_size
            ):
                rows[users] = chunk
            np.testing.assert_array_equal(rows, full)

    def test_iter_source_rows_subset(self):
        embedding = random_embedding(10)
        subset = [5, 1, 88]
        collected = {}
        for users, chunk in iter_source_rows(embedding, subset, block_size=8):
            for user, row in zip(users, chunk):
                collected[int(user)] = row
        assert sorted(collected) == sorted(subset)
        full = score_block(
            augment_sources(embedding), augment_targets(embedding)
        )
        for user, row in collected.items():
            np.testing.assert_array_equal(row, full[user])

    def test_aggregated_scores_matches_dense(self):
        embedding = random_embedding(11)
        seeds = [2, 30, 77]
        dense = score_block(
            augment_sources(embedding, seeds), augment_targets(embedding)
        )
        for block_size in (1, 10, 4096):
            for name, reduce in (
                ("ave", lambda m: m.mean(axis=0)),
                ("sum", lambda m: m.sum(axis=0)),
                ("max", lambda m: m.max(axis=0)),
                ("latest", lambda m: m[-1]),
            ):
                got = aggregated_scores(embedding, seeds, name, block_size)
                np.testing.assert_array_equal(got, reduce(dense))

    def test_aggregated_scores_custom_callable(self):
        embedding = random_embedding(12)
        seeds = [0, 1]
        got = aggregated_scores(
            embedding, seeds, lambda col: float(np.min(col)), block_size=7
        )
        dense = score_block(
            augment_sources(embedding, seeds), augment_targets(embedding)
        )
        np.testing.assert_array_equal(got, dense.min(axis=0))

    def test_aggregated_scores_validation(self):
        embedding = random_embedding(13)
        with pytest.raises(ServingError):
            aggregated_scores(embedding, [], "ave")
        with pytest.raises(ServingError):
            aggregated_scores(embedding, [0], "median-of-means")
