"""InfluenceService routing, index persistence, telemetry, and the CLI."""

import numpy as np
import pytest

from repro.core.embeddings import InfluenceEmbedding
from repro.errors import ServingError
from repro.obs import RunRecorder, recording
from repro.serve import (
    EmbeddingStore,
    InfluenceService,
    TopKEngine,
    TopKIndex,
)


@pytest.fixture
def embedding() -> InfluenceEmbedding:
    rng = np.random.default_rng(21)
    return InfluenceEmbedding(
        rng.normal(size=(40, 6)),
        rng.normal(size=(40, 6)),
        rng.normal(size=40),
        rng.normal(size=40),
    )


@pytest.fixture
def store_dir(embedding, tmp_path):
    EmbeddingStore.save(embedding, tmp_path / "store")
    return tmp_path / "store"


class TestTopKIndex:
    def test_build_matches_engine(self, embedding):
        engine = TopKEngine(embedding, block_size=8)
        index = TopKIndex.build(engine, k=7, batch_size=9)
        for user in (0, 13, 39):
            from_index = index.query(user)
            from_engine = engine.top_influenced(user, 7)
            np.testing.assert_array_equal(from_index.indices, from_engine.indices)
            np.testing.assert_array_equal(from_index.scores, from_engine.scores)

    def test_round_trip_is_mmapped_and_identical(self, embedding, store_dir):
        engine = TopKEngine(embedding, block_size=8)
        built = TopKIndex.build(engine, k=5, direction="influencers")
        built.save(store_dir)
        opened = TopKIndex.open(store_dir, "influencers")
        assert isinstance(opened.indices, np.memmap)
        assert not opened.indices.flags.writeable
        np.testing.assert_array_equal(opened.indices, built.indices)
        np.testing.assert_array_equal(opened.scores, built.scores)

    def test_query_depth_validation(self, embedding):
        index = TopKIndex.build(TopKEngine(embedding), k=5)
        with pytest.raises(ServingError, match="depth"):
            index.query(0, 6)
        with pytest.raises(ServingError):
            index.query(40)

    def test_open_missing_raises(self, store_dir):
        assert not TopKIndex.exists(store_dir)
        with pytest.raises(ServingError, match="no persisted"):
            TopKIndex.open(store_dir)

    def test_k_clamped_to_num_users(self, embedding):
        index = TopKIndex.build(TopKEngine(embedding), k=10_000)
        assert index.k == embedding.num_users


class TestInfluenceService:
    def test_scan_path_matches_engine(self, embedding, store_dir):
        service = InfluenceService.open(store_dir, block_size=8)
        engine = TopKEngine(embedding, block_size=8)
        got = service.top_influenced(4, 6)
        ref = engine.top_influenced(4, 6)
        np.testing.assert_array_equal(got.indices, ref.indices)
        np.testing.assert_array_equal(got.scores, ref.scores)

    def test_index_and_scan_paths_bitwise_identical(self, store_dir):
        service = InfluenceService.open(store_dir, block_size=8)
        scan = service.top_influenced(11, 6)
        service.precompute(k=10, directions=("influenced",))
        assert "influenced" in service.indices
        indexed = service.top_influenced(11, 6)
        np.testing.assert_array_equal(indexed.indices, scan.indices)
        np.testing.assert_array_equal(indexed.scores, scan.scores)

    def test_persisted_index_discovered_on_open(self, store_dir):
        InfluenceService.open(store_dir).precompute(
            k=4, directions=("influenced", "influencers")
        )
        reopened = InfluenceService.open(store_dir)
        assert sorted(reopened.indices) == ["influenced", "influencers"]
        # Deeper-than-index queries fall back to the scan path.
        deep = reopened.top_influenced(0, 20)
        assert deep.k == 20

    def test_batched_queries(self, embedding, store_dir):
        service = InfluenceService.open(store_dir, block_size=8)
        users = [1, 2, 3]
        batch = service.top_influencers_batch(users, 5)
        engine = TopKEngine(embedding, block_size=8)
        ref = engine.top_influencers_batch(users, 5)
        np.testing.assert_array_equal(batch.indices, ref.indices)
        np.testing.assert_array_equal(batch.scores, ref.scores)
        service.precompute(k=5, directions=("influencers",))
        indexed = service.top_influencers_batch(users, 5)
        np.testing.assert_array_equal(indexed.indices, ref.indices)
        np.testing.assert_array_equal(indexed.scores, ref.scores)

    def test_queries_recorded_into_ambient_metrics(self, store_dir):
        service = InfluenceService.open(store_dir)
        run = RunRecorder(name="test.serve")
        with recording(run):
            service.top_influenced(0, 3)
            service.precompute(k=3, directions=("influenced",))
            service.top_influenced(1, 3)
        snapshot = run.metrics.snapshot()
        assert "serve.queries" in snapshot
        samples = snapshot["serve.queries"]["samples"]
        assert samples.get("direction=influenced,path=scan") == 1.0
        assert samples.get("direction=influenced,path=index") == 1.0
        assert "serve.query.seconds" in snapshot
        span_names = [s["name"] for s in run.tracer.to_dicts()]
        assert "serve.precompute.influenced" in span_names

    def test_no_metrics_outside_recording_scope(self, store_dir):
        service = InfluenceService.open(store_dir)
        result = service.top_influenced(0, 3)  # must simply not raise
        assert result.k == 3

    def test_latency_summary_recorded(self, store_dir):
        service = InfluenceService.open(store_dir)
        run = RunRecorder(name="test.serve")
        with recording(run):
            for user in range(5):
                service.top_influenced(user, 3)
        summary = run.metrics.summary("serve.query.latency")
        assert summary.count(direction="influenced", path="scan") == 5
        p50 = summary.quantile(0.5, direction="influenced", path="scan")
        assert p50 is not None and p50 > 0.0

    def test_user_out_of_range_raises_and_counts(self, store_dir):
        service = InfluenceService.open(store_dir)
        run = RunRecorder(name="test.serve")
        with recording(run):
            with pytest.raises(ServingError, match="universe"):
                service.top_influenced(40, 3)
            with pytest.raises(ServingError, match="universe"):
                service.top_influencers(-1, 3)
        samples = run.metrics.snapshot()["serve.query.errors"]["samples"]
        assert samples == {
            "direction=influenced,error=ServingError": 1.0,
            "direction=influencers,error=ServingError": 1.0,
        }

    def test_missing_index_error_counted(self, store_dir):
        service = InfluenceService.open(store_dir)
        run = RunRecorder(name="test.serve")
        with recording(run):
            with pytest.raises(ServingError, match="index"):
                service.index_batch_query("influenced", [0, 1])
        samples = run.metrics.snapshot()["serve.query.errors"]["samples"]
        assert samples == {"direction=influenced,error=ServingError": 1.0}

    def test_successful_queries_count_no_errors(self, store_dir):
        service = InfluenceService.open(store_dir)
        run = RunRecorder(name="test.serve")
        with recording(run):
            service.top_influenced(0, 3)
        assert "serve.query.errors" not in run.metrics.snapshot()


class TestTraceSampling:
    def test_rate_one_emits_span_per_query(self, store_dir):
        service = InfluenceService.open(store_dir, trace_sample_rate=1.0)
        run = RunRecorder(name="test.serve")
        with recording(run):
            service.top_influenced(0, 3)
            service.top_influencers(1, 3)
        spans = [s for s in run.tracer.iter_spans() if s.name == "serve.query"]
        assert len(spans) == 2
        first = spans[0].attributes
        assert first["direction"] == "influenced"
        assert first["path"] == "scan"
        assert first["k"] == 3
        assert first["latency_s"] > 0.0

    def test_rate_zero_never_emits_and_never_draws(self, store_dir):
        service = InfluenceService.open(store_dir)  # default rate 0
        run = RunRecorder(name="test.serve")
        with recording(run):
            for user in range(10):
                service.top_influenced(user, 3)
        assert all(s.name != "serve.query" for s in run.tracer.iter_spans())

    def test_fractional_rate_is_seeded_and_deterministic(self, store_dir):
        def sampled_count(seed: int) -> int:
            service = InfluenceService.open(
                store_dir, trace_sample_rate=0.3, trace_seed=seed
            )
            run = RunRecorder(name="test.serve")
            with recording(run):
                for user in range(40):
                    service.top_influenced(user, 3)
            return sum(
                1 for s in run.tracer.iter_spans() if s.name == "serve.query"
            )

        first, second = sampled_count(7), sampled_count(7)
        assert first == second  # same seed, same decisions
        assert 0 < first < 40  # head sampling actually thins

    def test_failed_query_span_records_error_status(self, store_dir):
        service = InfluenceService.open(store_dir, trace_sample_rate=1.0)
        run = RunRecorder(name="test.serve")
        with recording(run):
            with pytest.raises(ServingError):
                service.top_influenced(400, 3)
        span = run.tracer.find("serve.query")
        assert span is not None
        assert span.status == "error"
        assert "ServingError" in span.error

    def test_invalid_rate_rejected(self, store_dir):
        with pytest.raises(ValueError, match="rate"):
            InfluenceService.open(store_dir, trace_sample_rate=1.5)


class TestServeCli:
    def test_build_index_query_pipeline(self, embedding, tmp_path, capsys):
        from repro.cli import main

        emb_path = tmp_path / "emb.npz"
        embedding.save(emb_path)
        store = tmp_path / "store"
        assert (
            main(
                [
                    "serve",
                    "--embedding",
                    str(emb_path),
                    "--store-dir",
                    str(store),
                    "--precompute-k",
                    "5",
                    "--query",
                    "3",
                    "--top-k",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "store built" in out
        assert "precomputed top-5" in out
        assert "top 5 users influenced by user 3" in out
        # Second invocation: query only, from the persisted artifacts.
        assert (
            main(
                [
                    "serve",
                    "--store-dir",
                    str(store),
                    "--query",
                    "3",
                    "--direction",
                    "influencers",
                ]
            )
            == 0
        )
        assert "influencing user 3" in capsys.readouterr().out

    def test_serve_requires_store_dir(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve"])

    def test_serve_status_line(self, embedding, tmp_path, capsys):
        from repro.cli import main

        EmbeddingStore.save(embedding, tmp_path / "s")
        assert main(["serve", "--store-dir", str(tmp_path / "s")]) == 0
        assert "opened store" in capsys.readouterr().out


class TestKValidation:
    """Regression pins for k/user validation across both query paths.

    Before the fix only the single-query ``user`` was range-checked:
    ``k > num_users`` failed only when routing happened to pick the
    scan, batched queries accepted negative user ids (numpy indexing
    silently wrapped them to the wrong rows), and none of these
    rejections were counted as errors.
    """

    def _indexed_service(self, store_dir, k=5):
        service = InfluenceService.open(store_dir)
        service.precompute(k, directions=("influenced",), persist=False)
        return service

    def test_k_above_num_users_rejected_on_scan_path(self, store_dir):
        service = InfluenceService.open(store_dir)
        with pytest.raises(ServingError, match="exceeds num_users"):
            service.top_influenced(0, 41)

    def test_k_above_num_users_rejected_on_index_path(self, store_dir):
        service = self._indexed_service(store_dir)
        with pytest.raises(ServingError, match="exceeds num_users"):
            service.top_influenced(0, 999)

    def test_k_rejection_identical_across_paths(self, store_dir):
        plain = InfluenceService.open(store_dir)
        indexed = self._indexed_service(store_dir)
        with pytest.raises(ServingError) as scan_error:
            plain.top_influenced(0, 50)
        with pytest.raises(ServingError) as index_error:
            indexed.top_influenced(0, 50)
        assert str(scan_error.value) == str(index_error.value)

    @pytest.mark.parametrize("bad_k", [0, -3])
    def test_non_positive_k_rejected(self, store_dir, bad_k):
        service = InfluenceService.open(store_dir)
        with pytest.raises(ServingError, match="positive"):
            service.top_influencers(0, bad_k)

    def test_k_rejections_are_counted(self, store_dir):
        service = InfluenceService.open(store_dir)
        run = RunRecorder(name="test.serve")
        with recording(run):
            with pytest.raises(ServingError):
                service.top_influenced(0, 41)
            with pytest.raises(ServingError):
                service.top_influencers(0, 0)
        samples = run.metrics.snapshot()["serve.query.errors"]["samples"]
        assert samples == {
            "direction=influenced,error=ServingError": 1.0,
            "direction=influencers,error=ServingError": 1.0,
        }

    def test_batch_rejects_bad_k_on_both_paths(self, store_dir):
        plain = InfluenceService.open(store_dir)
        indexed = self._indexed_service(store_dir)
        for service in (plain, indexed):
            with pytest.raises(ServingError, match="exceeds num_users"):
                service.top_influenced_batch([0, 1], 41)

    def test_batch_rejects_out_of_range_users(self, store_dir):
        service = self._indexed_service(store_dir)
        with pytest.raises(ServingError, match="universe"):
            service.top_influenced_batch([0, -1], 3)
        with pytest.raises(ServingError, match="universe"):
            service.top_influenced_batch([0, 40], 3)

    def test_batch_rejects_empty_user_list(self, store_dir):
        service = InfluenceService.open(store_dir)
        with pytest.raises(ServingError, match="at least one"):
            service.top_influenced_batch([], 3)

    def test_batch_rejections_are_counted(self, store_dir):
        service = InfluenceService.open(store_dir)
        run = RunRecorder(name="test.serve")
        with recording(run):
            with pytest.raises(ServingError):
                service.top_influencers_batch([-1], 3)
        samples = run.metrics.snapshot()["serve.query.errors"]["samples"]
        assert samples == {"direction=influencers,error=ServingError": 1.0}

    def test_index_batch_query_rejects_and_counts_bad_users(self, store_dir):
        service = self._indexed_service(store_dir)
        run = RunRecorder(name="test.serve")
        with recording(run):
            with pytest.raises(ServingError, match="universe"):
                service.index_batch_query("influenced", [0, 40])
        samples = run.metrics.snapshot()["serve.query.errors"]["samples"]
        assert samples == {"direction=influenced,error=ServingError": 1.0}

    def test_valid_k_equal_num_users_still_served(self, store_dir):
        service = InfluenceService.open(store_dir)
        result = service.top_influenced(0, 40)
        assert result.indices.shape == (40,)
