"""Tests for the repro.serve influence serving layer."""
