"""EmbeddingStore round-trip, mmap semantics, and corruption handling."""

import json

import numpy as np
import pytest

from repro.core.embeddings import InfluenceEmbedding
from repro.errors import ServingError
from repro.serve import (
    STORE_FORMAT_VERSION,
    STORE_MANIFEST_FILENAME,
    EmbeddingStore,
)


@pytest.fixture
def embedding() -> InfluenceEmbedding:
    rng = np.random.default_rng(42)
    return InfluenceEmbedding(
        rng.normal(size=(30, 4)),
        rng.normal(size=(30, 4)),
        rng.normal(size=30),
        rng.normal(size=30),
    )


class TestRoundTrip:
    def test_open_returns_readonly_memmaps_equal_to_saved(
        self, embedding, tmp_path
    ):
        EmbeddingStore.save(embedding, tmp_path / "store")
        store = EmbeddingStore.open(tmp_path / "store")
        for name in ("source", "target", "source_bias", "target_bias"):
            mapped = getattr(store, name)
            assert isinstance(mapped, np.memmap), f"{name} is not memory-mapped"
            assert not mapped.flags.writeable, f"{name} is writable"
            np.testing.assert_array_equal(mapped, getattr(embedding, name))

    def test_writes_to_mapped_arrays_rejected(self, embedding, tmp_path):
        store = EmbeddingStore.save(embedding, tmp_path)
        with pytest.raises((ValueError, RuntimeError)):
            store.source[0, 0] = 99.0

    def test_save_returns_opened_store(self, embedding, tmp_path):
        store = EmbeddingStore.save(embedding, tmp_path)
        assert store.num_users == embedding.num_users
        assert store.dim == embedding.dim

    def test_embedding_view_is_zero_copy(self, embedding, tmp_path):
        store = EmbeddingStore.save(embedding, tmp_path)
        view = store.embedding()
        assert view.source.base is not None  # a view, not a copy
        np.testing.assert_array_equal(view.source, embedding.source)
        assert view.score(0, 1) == pytest.approx(embedding.score(0, 1))

    def test_resave_overwrites(self, embedding, tmp_path):
        EmbeddingStore.save(embedding, tmp_path)
        other = InfluenceEmbedding.initialize(30, 4, seed=7)
        store = EmbeddingStore.save(other, tmp_path)
        np.testing.assert_array_equal(store.source, other.source)


class TestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ServingError, match="missing"):
            EmbeddingStore.open(tmp_path)

    def test_corrupt_manifest(self, embedding, tmp_path):
        EmbeddingStore.save(embedding, tmp_path)
        (tmp_path / STORE_MANIFEST_FILENAME).write_text("{not json")
        with pytest.raises(ServingError, match="corrupt"):
            EmbeddingStore.open(tmp_path)

    def test_wrong_format_version(self, embedding, tmp_path):
        EmbeddingStore.save(embedding, tmp_path)
        manifest_path = tmp_path / STORE_MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = STORE_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ServingError, match="format_version"):
            EmbeddingStore.open(tmp_path)

    def test_missing_shard(self, embedding, tmp_path):
        EmbeddingStore.save(embedding, tmp_path)
        (tmp_path / "target.npy").unlink()
        with pytest.raises(ServingError, match="missing store shard"):
            EmbeddingStore.open(tmp_path)

    def test_shape_mismatch_detected(self, embedding, tmp_path):
        EmbeddingStore.save(embedding, tmp_path)
        manifest_path = tmp_path / STORE_MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["num_users"] = 12345
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ServingError, match="shape"):
            EmbeddingStore.open(tmp_path)

    def test_no_uncommitted_temp_files_left(self, embedding, tmp_path):
        EmbeddingStore.save(embedding, tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []
