"""Resume-equivalence property tests.

The central checkpoint guarantee: a run interrupted mid-training and
resumed from its latest checkpoint finishes with *bitwise-identical*
embeddings and loss history to the same run left uninterrupted.  The
tests simulate the crash with a manager subclass that raises after a
target epoch's checkpoint lands, keeping the config (and therefore its
fingerprint) identical between the crashed and resumed runs.
"""

import dataclasses

import numpy as np
import pytest

from repro.ckpt import CheckpointManager
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.data.synthetic import SyntheticSocialDataset
from repro.errors import CheckpointError, TrainingError


class Crash(RuntimeError):
    """Simulated process death, injected after a checkpoint write."""


class CrashingManager(CheckpointManager):
    """Checkpoints normally, then dies after the target epoch's save."""

    def __init__(self, directory, crash_after_epoch, **kwargs):
        super().__init__(directory, **kwargs)
        self.crash_after_epoch = crash_after_epoch

    def maybe_save(self, model, epoch, **kwargs):
        path = super().maybe_save(model, epoch, **kwargs)
        if epoch == self.crash_after_epoch:
            raise Crash(f"simulated crash after epoch {epoch}")
        return path


@pytest.fixture(scope="module")
def dataset():
    return SyntheticSocialDataset.digg_like(num_users=60, num_items=12, seed=5)


def _train(config, dataset, checkpoint=None, resume=False, seed=13):
    model = Inf2vecModel(config, seed=seed)
    return model.fit(dataset.graph, dataset.log, checkpoint=checkpoint, resume=resume)


def _assert_identical(resumed, reference):
    assert resumed.loss_history == reference.loss_history
    np.testing.assert_array_equal(
        resumed.embedding.source, reference.embedding.source
    )
    np.testing.assert_array_equal(
        resumed.embedding.target, reference.embedding.target
    )
    np.testing.assert_array_equal(
        resumed.embedding.source_bias, reference.embedding.source_bias
    )
    np.testing.assert_array_equal(
        resumed.embedding.target_bias, reference.embedding.target_bias
    )


BASE = Inf2vecConfig(dim=8, epochs=6)

VARIANTS = [
    pytest.param(BASE, id="batched"),
    pytest.param(dataclasses.replace(BASE, engine="sequential"), id="sequential"),
    pytest.param(
        dataclasses.replace(BASE, regenerate_contexts=True),
        id="regenerate-contexts",
    ),
    pytest.param(
        dataclasses.replace(BASE, negative_distribution="unigram"),
        id="unigram-negatives",
    ),
]


class TestResumeEquivalence:
    @pytest.mark.parametrize("config", VARIANTS)
    def test_crash_and_resume_is_bitwise_identical(
        self, config, dataset, tmp_path
    ):
        reference = _train(config, dataset)

        crasher = CrashingManager(tmp_path, crash_after_epoch=2)
        with pytest.raises(Crash):
            _train(config, dataset, checkpoint=crasher)

        manager = CheckpointManager(tmp_path)
        resumed = _train(config, dataset, checkpoint=manager, resume=True)
        _assert_identical(resumed, reference)

    def test_resume_after_sparse_cadence_crash(self, dataset, tmp_path):
        """Crash between checkpoints: resume replays from the last one."""
        config = BASE
        reference = _train(config, dataset)

        crasher = CrashingManager(tmp_path, crash_after_epoch=3, every=2)
        with pytest.raises(Crash):
            _train(config, dataset, checkpoint=crasher)

        manager = CheckpointManager(tmp_path, every=2)
        resumed = _train(config, dataset, checkpoint=manager, resume=True)
        _assert_identical(resumed, reference)

    def test_resume_after_completed_run_restores_terminal_state(
        self, dataset, tmp_path
    ):
        """Resuming a finished run is a no-op restore, not retraining."""
        manager = CheckpointManager(tmp_path)
        reference = _train(BASE, dataset, checkpoint=manager)
        resumed = _train(BASE, dataset, checkpoint=manager, resume=True)
        _assert_identical(resumed, reference)


class TestResumeGuards:
    def test_resume_without_manager_raises(self, dataset):
        model = Inf2vecModel(BASE, seed=13)
        with pytest.raises(TrainingError, match="checkpoint manager"):
            model.fit(dataset.graph, dataset.log, resume=True)

    def test_resume_with_empty_dir_starts_fresh(self, dataset, tmp_path):
        reference = _train(BASE, dataset)
        manager = CheckpointManager(tmp_path / "empty")
        resumed = _train(BASE, dataset, checkpoint=manager, resume=True)
        _assert_identical(resumed, reference)

    def test_resume_rejects_mismatched_config(self, dataset, tmp_path):
        manager = CheckpointManager(tmp_path)
        _train(BASE, dataset, checkpoint=manager)
        other = dataclasses.replace(BASE, epochs=9)
        with pytest.raises(CheckpointError, match="fingerprint"):
            _train(other, dataset, checkpoint=manager, resume=True)


class TestPartialFitCheckpointing:
    def test_partial_fit_extends_checkpoint_series(self, dataset, tmp_path):
        train, extra = dataset.log.split((0.7, 0.3), seed=5)
        manager = CheckpointManager(tmp_path, keep=20)
        model = Inf2vecModel(BASE, seed=13)
        model.fit(dataset.graph, train, checkpoint=manager)
        fit_epochs = {p.name for p in manager.checkpoint_paths()}

        model.partial_fit(dataset.graph, extra, epochs=2, checkpoint=manager)
        all_epochs = {p.name for p in manager.checkpoint_paths()}
        new = sorted(all_epochs - fit_epochs)
        # partial_fit uses the cumulative epoch counter, so its
        # checkpoints continue the series past fit()'s final epoch.
        assert new == ["ckpt-00000006.npz", "ckpt-00000007.npz"]

        state = manager.latest_state()
        assert state.epoch == len(model.loss_history) - 1
        np.testing.assert_array_equal(state.source, model.embedding.source)
