"""Kill-and-resume smoke test: SIGKILL a real training process mid-run.

This is the end-to-end version of the resume-equivalence property: a
``repro.cli train`` subprocess is killed with SIGKILL (no cleanup
handlers, exactly like the OOM-killer or a power cut), then rerun with
``--resume``.  The recovered run must produce an embedding bitwise
identical to an uninterrupted reference run, and the checkpoint
directory must never contain a torn file at a final destination.

The equivalence holds regardless of kill timing: killed before the
first checkpoint lands the resume starts fresh; killed after completion
the resume restores the terminal state — both still match the
reference.  That makes the test race-free by construction.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ckpt.manager import _CKPT_PATTERN

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

TRAIN_ARGS = [
    "train",
    "--num-users", "100",
    "--num-items", "15",
    "--dim", "8",
    "--epochs", "10",
    "--seed", "0",
]


def _run_cli(extra, cwd):
    env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *TRAIN_ARGS, *extra],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def _spawn_cli(extra, cwd):
    env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *TRAIN_ARGS, *extra],
        cwd=cwd,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_first_checkpoint(ckpt_dir: Path, proc, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if ckpt_dir.is_dir() and any(
            _CKPT_PATTERN.match(p.name) for p in ckpt_dir.iterdir()
        ):
            return
        if proc.poll() is not None:
            return  # process finished before we caught it — still fine
        time.sleep(0.01)
    pytest.fail("no checkpoint appeared within the timeout")


def test_sigkill_mid_run_resumes_to_identical_embedding(tmp_path):
    reference = _run_cli(["--out", str(tmp_path / "ref.npz")], tmp_path)
    assert reference.returncode == 0, reference.stderr

    ckpt_dir = tmp_path / "ckpts"
    victim = _spawn_cli(
        ["--checkpoint-dir", str(ckpt_dir), "--checkpoint-every", "1"],
        tmp_path,
    )
    try:
        _wait_for_first_checkpoint(ckpt_dir, victim)
        if victim.poll() is None:
            os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.wait(timeout=30)

    # No torn file may sit at a final destination: everything matching
    # the checkpoint name pattern must load cleanly.
    from repro.ckpt import TrainingState

    committed = [
        p for p in ckpt_dir.iterdir() if _CKPT_PATTERN.match(p.name)
    ]
    for path in committed:
        TrainingState.load(path)  # raises CheckpointError on corruption

    resumed = _run_cli(
        [
            "--checkpoint-dir", str(ckpt_dir),
            "--checkpoint-every", "1",
            "--resume",
            "--out", str(tmp_path / "resumed.npz"),
        ],
        tmp_path,
    )
    assert resumed.returncode == 0, resumed.stderr

    with np.load(tmp_path / "ref.npz") as ref, np.load(
        tmp_path / "resumed.npz"
    ) as got:
        for key in ref.files:
            np.testing.assert_array_equal(got[key], ref[key], err_msg=key)
