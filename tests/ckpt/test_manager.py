"""Unit tests for checkpoint cadence, retention, and discovery."""

import numpy as np
import pytest

from repro.ckpt import CheckpointManager, TrainingState
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def fitted_model() -> Inf2vecModel:
    graph = SocialGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    log = ActionLog(
        [DiffusionEpisode(0, [(0, 1.0), (1, 2.0), (2, 3.0)])], num_users=5
    )
    model = Inf2vecModel(Inf2vecConfig(dim=4, epochs=2), seed=3)
    return model.fit(graph, log)


class TestCadence:
    def test_skips_off_cadence_epochs(self, fitted_model, tmp_path):
        manager = CheckpointManager(tmp_path, every=3)
        assert manager.maybe_save(fitted_model, epoch=0) is None
        assert manager.maybe_save(fitted_model, epoch=1) is None

    def test_fires_on_cadence(self, fitted_model, tmp_path):
        manager = CheckpointManager(tmp_path, every=2)
        path = manager.maybe_save(fitted_model, epoch=1)
        assert path is not None and path.exists()

    def test_force_bypasses_cadence(self, fitted_model, tmp_path):
        manager = CheckpointManager(tmp_path, every=100)
        path = manager.maybe_save(fitted_model, epoch=0, force=True)
        assert path is not None and path.exists()

    def test_invalid_cadence_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, every=0)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)


class TestRetention:
    def test_prunes_to_keep_newest(self, fitted_model, tmp_path):
        manager = CheckpointManager(tmp_path, every=1, keep=2)
        for epoch in range(5):
            manager.save(fitted_model, epoch)
        names = [p.name for p in manager.checkpoint_paths()]
        assert names == ["ckpt-00000003.npz", "ckpt-00000004.npz"]

    def test_foreign_files_untouched(self, fitted_model, tmp_path):
        (tmp_path / "notes.txt").write_text("keep me")
        manager = CheckpointManager(tmp_path, every=1, keep=1)
        for epoch in range(3):
            manager.save(fitted_model, epoch)
        assert (tmp_path / "notes.txt").read_text() == "keep me"


def _save_consistent(manager, model, epoch):
    """Write a checkpoint whose loss history matches ``epoch``."""
    import dataclasses

    state = TrainingState.capture(model, epoch=len(model.loss_history) - 1)
    state = dataclasses.replace(
        state,
        epoch=epoch,
        loss_history=tuple(float(i) for i in range(epoch + 1)),
    )
    return state.save(manager.path_for_epoch(epoch))


class TestDiscovery:
    def test_paths_sorted_by_epoch(self, fitted_model, tmp_path):
        manager = CheckpointManager(tmp_path, keep=10)
        for epoch in (7, 2, 11):
            manager.save(fitted_model, epoch)
        epochs = [p.name for p in manager.checkpoint_paths()]
        assert epochs == [
            "ckpt-00000002.npz",
            "ckpt-00000007.npz",
            "ckpt-00000011.npz",
        ]

    def test_latest_path_empty_dir(self, tmp_path):
        assert CheckpointManager(tmp_path).latest_path() is None
        assert CheckpointManager(tmp_path).latest_state() is None

    def test_latest_state_skips_corrupt_newest(self, fitted_model, tmp_path):
        manager = CheckpointManager(tmp_path, keep=10)
        _save_consistent(manager, fitted_model, 0)
        _save_consistent(manager, fitted_model, 1)
        manager.path_for_epoch(1).write_bytes(b"torn write from the old days")
        state = manager.latest_state()
        assert state is not None and state.epoch == 0

    def test_latest_state_returns_newest_valid(self, fitted_model, tmp_path):
        manager = CheckpointManager(tmp_path, keep=10)
        _save_consistent(manager, fitted_model, 0)
        _save_consistent(manager, fitted_model, 4)
        assert manager.latest_state().epoch == 4


class TestMetrics:
    def test_save_records_counters_and_latency(self, fitted_model, tmp_path):
        registry = MetricsRegistry()
        manager = CheckpointManager(tmp_path, every=1, keep=1)
        manager.save(fitted_model, 0, metrics=registry)
        manager.save(fitted_model, 1, metrics=registry)
        assert registry.counter("ckpt.saves").value() == 2
        expected_bytes = sum(
            p.stat().st_size for p in manager.checkpoint_paths()
        )
        assert registry.counter("ckpt.bytes_written").value() >= expected_bytes
        assert registry.counter("ckpt.pruned").value() == 1
        snapshot = registry.snapshot()
        assert "ckpt.write_seconds" in snapshot

    def test_saved_state_roundtrips(self, fitted_model, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(fitted_model, 1)
        state = TrainingState.load(path)
        np.testing.assert_array_equal(
            state.source, fitted_model.embedding.source
        )
