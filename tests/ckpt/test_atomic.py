"""Unit tests for the atomic-write primitive."""

import numpy as np
import pytest

from repro.ckpt.atomic import (
    atomic_output,
    atomic_write_bytes,
    atomic_write_text,
    ensure_suffix,
)


class TestEnsureSuffix:
    def test_appends_missing_suffix(self):
        assert ensure_suffix("model", ".npz").name == "model.npz"

    def test_keeps_existing_suffix(self):
        assert ensure_suffix("model.npz", ".npz").name == "model.npz"

    def test_appends_after_foreign_suffix(self):
        assert ensure_suffix("model.v2", ".npz").name == "model.v2.npz"

    def test_preserves_directory(self, tmp_path):
        result = ensure_suffix(tmp_path / "a" / "model", ".npz")
        assert result == tmp_path / "a" / "model.npz"


class TestAtomicOutput:
    def test_commits_on_success(self, tmp_path):
        final = tmp_path / "out.txt"
        with atomic_output(final) as tmp:
            tmp.write_text("payload")
            assert not final.exists()  # nothing visible until commit
        assert final.read_text() == "payload"

    def test_no_temp_files_left_after_commit(self, tmp_path):
        final = tmp_path / "out.txt"
        with atomic_output(final) as tmp:
            tmp.write_text("payload")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failure_leaves_destination_untouched(self, tmp_path):
        final = tmp_path / "out.txt"
        final.write_text("previous complete version")
        with pytest.raises(RuntimeError):
            with atomic_output(final) as tmp:
                tmp.write_text("half-writ")
                raise RuntimeError("simulated crash")
        assert final.read_text() == "previous complete version"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failure_with_no_previous_version(self, tmp_path):
        final = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_output(final) as tmp:
                raise RuntimeError("crash before writing anything")
        assert list(tmp_path.iterdir()) == []

    def test_creates_parent_directories(self, tmp_path):
        final = tmp_path / "deep" / "nested" / "out.txt"
        with atomic_output(final) as tmp:
            tmp.write_text("x")
        assert final.read_text() == "x"

    def test_temp_keeps_destination_suffix_for_numpy(self, tmp_path):
        """np.savez appends .npz to bare paths; the temp name must
        already end with it or the commit would rename a missing file."""
        final = tmp_path / "arrays.npz"
        with atomic_output(final) as tmp:
            assert tmp.name.endswith(".npz")
            np.savez_compressed(tmp, a=np.arange(3))
        with np.load(final) as data:
            assert data["a"].tolist() == [0, 1, 2]

    def test_temp_is_hidden_dotfile(self, tmp_path):
        with atomic_output(tmp_path / "v.npz") as tmp:
            assert tmp.name.startswith(".")
            tmp.write_bytes(b"x")

    def test_replaces_existing_file(self, tmp_path):
        final = tmp_path / "out.txt"
        atomic_write_text(final, "one")
        atomic_write_text(final, "two")
        assert final.read_text() == "two"


class TestConvenienceWriters:
    def test_write_bytes_returns_final_path(self, tmp_path):
        result = atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01")
        assert result == tmp_path / "b.bin"
        assert result.read_bytes() == b"\x00\x01"

    def test_write_text_roundtrip(self, tmp_path):
        result = atomic_write_text(tmp_path / "t.json", '{"k": "v"}\n')
        assert result.read_text() == '{"k": "v"}\n'
