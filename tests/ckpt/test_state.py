"""Unit tests for training-state serialization."""

import numpy as np
import pytest

from repro.ckpt import CHECKPOINT_VERSION, TrainingState
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import CheckpointError


@pytest.fixture()
def fitted_model() -> Inf2vecModel:
    graph = SocialGraph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    log = ActionLog(
        [
            DiffusionEpisode(0, [(0, 1.0), (1, 2.0), (2, 3.0)]),
            DiffusionEpisode(1, [(3, 1.0), (4, 2.0)]),
        ],
        num_users=6,
    )
    model = Inf2vecModel(Inf2vecConfig(dim=4, epochs=3), seed=7)
    return model.fit(graph, log)


class TestCapture:
    def test_capture_copies_arrays(self, fitted_model):
        state = TrainingState.capture(fitted_model, epoch=2)
        fitted_model.embedding.source[0, 0] = 123.0
        assert state.source[0, 0] != 123.0

    def test_capture_records_epoch_and_history(self, fitted_model):
        state = TrainingState.capture(fitted_model, epoch=2)
        assert state.epoch == 2
        assert state.loss_history == tuple(fitted_model.loss_history)

    def test_capture_restores_rng_stream(self, fitted_model):
        state = TrainingState.capture(fitted_model, epoch=2)
        expected = fitted_model.rng.integers(0, 1 << 30, size=8)
        fresh = np.random.default_rng(0)
        fresh.bit_generator.state = state.rng_state
        assert np.array_equal(fresh.integers(0, 1 << 30, size=8), expected)

    def test_shapes_exposed(self, fitted_model):
        state = TrainingState.capture(fitted_model, epoch=2)
        assert state.num_users == 6
        assert state.dim == 4


class TestRoundtrip:
    def test_save_load_roundtrip(self, fitted_model, tmp_path):
        state = TrainingState.capture(fitted_model, epoch=2)
        path = state.save(tmp_path / "ckpt.npz")
        loaded = TrainingState.load(path)
        np.testing.assert_array_equal(loaded.source, state.source)
        np.testing.assert_array_equal(loaded.target, state.target)
        np.testing.assert_array_equal(loaded.source_bias, state.source_bias)
        np.testing.assert_array_equal(loaded.target_bias, state.target_bias)
        assert loaded.epoch == state.epoch
        assert loaded.loss_history == state.loss_history
        assert loaded.config_fingerprint == state.config_fingerprint
        assert loaded.rng_state == state.rng_state
        assert loaded.entry_rng_state == state.entry_rng_state

    def test_bare_path_roundtrip(self, fitted_model, tmp_path):
        state = TrainingState.capture(fitted_model, epoch=2)
        path = state.save(tmp_path / "ckpt")  # no .npz
        assert path.name == "ckpt.npz"
        assert TrainingState.load(tmp_path / "ckpt").epoch == 2

    def test_to_embedding(self, fitted_model, tmp_path):
        state = TrainingState.capture(fitted_model, epoch=2)
        emb = state.to_embedding()
        np.testing.assert_array_equal(
            emb.source, fitted_model.embedding.source
        )

    def test_mt19937_rng_state_roundtrips(self, fitted_model, tmp_path):
        """The legacy bit generator's array-valued state survives JSON."""
        legacy = np.random.Generator(np.random.MT19937(5))
        fitted_model._rng = legacy
        state = TrainingState.capture(fitted_model, epoch=2)
        loaded = TrainingState.load(state.save(tmp_path / "mt"))
        fresh = np.random.Generator(np.random.MT19937(0))
        fresh.bit_generator.state = loaded.rng_state
        assert np.array_equal(
            fresh.integers(0, 100, size=5), legacy.integers(0, 100, size=5)
        )


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            TrainingState.load(tmp_path / "nope.npz")

    def test_version_constant(self):
        assert CHECKPOINT_VERSION == 1

    def test_mismatched_history_rejected(self, fitted_model):
        state = TrainingState.capture(fitted_model, epoch=2)
        with pytest.raises(CheckpointError, match="loss history"):
            TrainingState(
                source=state.source,
                target=state.target,
                source_bias=state.source_bias,
                target_bias=state.target_bias,
                epoch=5,  # but only 3 losses recorded
                loss_history=state.loss_history,
                config_fingerprint=state.config_fingerprint,
                rng_state=state.rng_state,
                entry_rng_state=state.entry_rng_state,
            ).validate()

    def test_bias_shape_rejected(self, fitted_model):
        state = TrainingState.capture(fitted_model, epoch=2)
        with pytest.raises(CheckpointError, match="bias"):
            TrainingState(
                source=state.source,
                target=state.target,
                source_bias=state.source_bias[:-1],
                target_bias=state.target_bias,
                epoch=state.epoch,
                loss_history=state.loss_history,
                config_fingerprint=state.config_fingerprint,
                rng_state=state.rng_state,
                entry_rng_state=state.entry_rng_state,
            ).validate()


class TestWorkerTopology:
    """Round trip + validation of the optional hogwild worker topology."""

    def _topology(self, workers=2):
        states = [
            np.random.default_rng(seed).bit_generator.state
            for seed in range(workers)
        ]
        later = [
            np.random.default_rng(100 + seed).bit_generator.state
            for seed in range(workers)
        ]
        return {
            "workers": workers,
            "entry_rng_states": states,
            "rng_states": later,
        }

    def test_roundtrip(self, fitted_model, tmp_path):
        topology = self._topology()
        state = TrainingState.capture(
            fitted_model, epoch=2, worker_topology=topology
        )
        loaded = TrainingState.load(state.save(tmp_path / "ckpt.npz"))
        assert loaded.worker_topology is not None
        assert loaded.worker_topology["workers"] == 2
        for restored, original in zip(
            loaded.worker_topology["entry_rng_states"],
            topology["entry_rng_states"],
        ):
            a = np.random.default_rng(0)
            b = np.random.default_rng(0)
            a.bit_generator.state = restored
            b.bit_generator.state = original
            assert np.array_equal(
                a.integers(0, 1 << 30, size=8), b.integers(0, 1 << 30, size=8)
            )

    def test_absent_by_default(self, fitted_model, tmp_path):
        state = TrainingState.capture(fitted_model, epoch=2)
        assert state.worker_topology is None
        loaded = TrainingState.load(state.save(tmp_path / "ckpt.npz"))
        assert loaded.worker_topology is None

    def test_capture_deep_copies_topology(self, fitted_model):
        topology = self._topology()
        state = TrainingState.capture(
            fitted_model, epoch=2, worker_topology=topology
        )
        topology["workers"] = 99
        assert state.worker_topology["workers"] == 2

    def test_inconsistent_topology_rejected(self, fitted_model, tmp_path):
        topology = self._topology()
        topology["rng_states"] = topology["rng_states"][:1]  # wrong length
        state = TrainingState.capture(
            fitted_model, epoch=2, worker_topology=topology
        )
        with pytest.raises(CheckpointError, match="topology"):
            state.save(tmp_path / "ckpt.npz")
