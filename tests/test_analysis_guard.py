"""Guard: the full invariant suite passes over ``src/repro``.

This is the test that makes the contracts machine-enforced on every
test run: no global RNG state, no bare prints, atomic-only
persistence, monotonic timing, accurate ``__all__`` declarations, and
the hygiene rules — see DESIGN.md "Coding invariants".  Since the
checker grew a second pass, it also runs every project rule (hogwild
write discipline, serving determinism, the telemetry catalog
contract, dead exports) over the whole-project graph.  It absorbs the
old ``tests/test_no_print.py`` (the ``no-print`` rule) and also keeps
the ``scripts/check_no_print.py`` compat shim honest.
"""

import sys
import time
from pathlib import Path

from repro.analysis import (
    baseline_key,
    build_project_graph,
    default_project_rules,
    default_rules,
    load_baseline,
    run_analysis,
    run_project_rules,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / ".analysis-baseline.json"

#: Usage-only trees the project pass resolves imports against.
REFERENCE_ROOTS = tuple(
    REPO_ROOT / name
    for name in ("tests", "benchmarks", "examples", "scripts")
    if (REPO_ROOT / name).is_dir()
)


def _run_suite():
    baseline = load_baseline(BASELINE) if BASELINE.is_file() else frozenset()
    findings = list(run_analysis(SRC_ROOT, default_rules()))
    graph = build_project_graph(SRC_ROOT, reference_roots=REFERENCE_ROOTS)
    findings.extend(run_project_rules(graph, default_project_rules()))
    return [f for f in findings if baseline_key(f) not in baseline]


def test_source_tree_satisfies_all_invariants():
    findings = _run_suite()
    rendered = "\n".join(f.render(prefix="src/repro") for f in findings)
    assert not findings, f"invariant violations in src/:\n{rendered}"


def test_full_suite_is_fast_enough_for_every_test_run():
    """The acceptance bound: both passes finish well inside 10 s."""
    start = time.perf_counter()
    _run_suite()
    elapsed = time.perf_counter() - start
    assert elapsed < 10.0, f"analysis took {elapsed:.2f}s (budget: 10s)"


def test_check_no_print_shim_still_works():
    """The documented ``scripts/check_no_print.py`` command still runs."""
    scripts_dir = REPO_ROOT / "scripts"
    sys.path.insert(0, str(scripts_dir))
    try:
        import check_no_print

        violations = check_no_print.find_violations()
    finally:
        sys.path.remove(str(scripts_dir))
    assert violations == [], (
        "bare print() calls outside the rendering surfaces "
        f"(use repro.utils.logging or repro.obs): {violations}"
    )


def test_baseline_file_is_checked_in_and_loadable():
    """The repo ships a loadable (currently empty) baseline."""
    assert BASELINE.is_file(), f"missing checked-in baseline {BASELINE}"
    entries = load_baseline(BASELINE)
    assert entries == frozenset(), (
        "the baseline should stay empty now the tree is clean; new "
        f"grandfathered entries need justification: {sorted(entries)}"
    )
