"""Unit tests for the negative sampler."""

import numpy as np
import pytest

from repro.core.negative import UNIGRAM_DISTORTION, NegativeSampler
from repro.errors import TrainingError
from repro.utils.rng import ensure_rng


class TestConstruction:
    def test_uniform_probabilities(self):
        sampler = NegativeSampler.uniform(4)
        assert sampler.probabilities().tolist() == pytest.approx([0.25] * 4)

    def test_from_frequencies_distortion(self):
        sampler = NegativeSampler.from_frequencies(
            np.array([0.0, 15.0]), distortion=UNIGRAM_DISTORTION, smoothing=1.0
        )
        probs = sampler.probabilities()
        expected = np.array([1.0, 16.0]) ** 0.75
        expected /= expected.sum()
        assert probs.tolist() == pytest.approx(expected.tolist())

    def test_negative_weight_rejected(self):
        with pytest.raises(TrainingError):
            NegativeSampler(np.array([1.0, -1.0]))

    def test_all_zero_rejected(self):
        with pytest.raises(TrainingError, match="positive"):
            NegativeSampler(np.zeros(3))

    def test_empty_rejected(self):
        with pytest.raises(TrainingError):
            NegativeSampler(np.empty(0))

    def test_non_finite_rejected(self):
        with pytest.raises(TrainingError):
            NegativeSampler(np.array([1.0, np.inf]))

    def test_negative_frequencies_rejected(self):
        with pytest.raises(TrainingError):
            NegativeSampler.from_frequencies(np.array([-1.0, 2.0]))


class TestSampling:
    def test_sample_shape_and_range(self):
        sampler = NegativeSampler.uniform(10)
        rng = ensure_rng(0)
        draws = sampler.sample(1000, rng)
        assert draws.shape == (1000,)
        assert draws.min() >= 0
        assert draws.max() < 10

    def test_sample_matrix(self):
        sampler = NegativeSampler.uniform(5)
        rng = ensure_rng(0)
        matrix = sampler.sample_matrix(7, 3, rng)
        assert matrix.shape == (7, 3)

    def test_zero_count(self):
        sampler = NegativeSampler.uniform(5)
        rng = ensure_rng(0)
        assert sampler.sample(0, rng).shape == (0,)

    def test_negative_count_rejected(self):
        sampler = NegativeSampler.uniform(5)
        with pytest.raises(TrainingError):
            sampler.sample(-1, ensure_rng(0))

    def test_zero_weight_user_never_drawn(self):
        sampler = NegativeSampler(np.array([0.0, 1.0, 1.0]))
        rng = ensure_rng(0)
        draws = sampler.sample(2000, rng)
        assert 0 not in draws

    def test_empirical_distribution_matches(self):
        weights = np.array([1.0, 3.0])
        sampler = NegativeSampler(weights)
        rng = ensure_rng(42)
        draws = sampler.sample(20000, rng)
        fraction_of_ones = float(np.mean(draws == 1))
        assert fraction_of_ones == pytest.approx(0.75, abs=0.02)

    def test_deterministic_under_seed(self):
        sampler = NegativeSampler.uniform(100)
        a = sampler.sample(50, ensure_rng(5))
        b = sampler.sample(50, ensure_rng(5))
        assert np.array_equal(a, b)
