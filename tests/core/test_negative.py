"""Unit tests for the negative sampler."""

import numpy as np
import pytest

from repro.core.negative import UNIGRAM_DISTORTION, NegativeSampler
from repro.errors import TrainingError
from repro.utils.rng import ensure_rng


class TestConstruction:
    def test_uniform_probabilities(self):
        sampler = NegativeSampler.uniform(4)
        assert sampler.probabilities().tolist() == pytest.approx([0.25] * 4)

    def test_from_frequencies_distortion(self):
        sampler = NegativeSampler.from_frequencies(
            np.array([0.0, 15.0]), distortion=UNIGRAM_DISTORTION, smoothing=1.0
        )
        probs = sampler.probabilities()
        expected = np.array([1.0, 16.0]) ** 0.75
        expected /= expected.sum()
        assert probs.tolist() == pytest.approx(expected.tolist())

    def test_negative_weight_rejected(self):
        with pytest.raises(TrainingError):
            NegativeSampler(np.array([1.0, -1.0]))

    def test_all_zero_rejected(self):
        with pytest.raises(TrainingError, match="positive"):
            NegativeSampler(np.zeros(3))

    def test_empty_rejected(self):
        with pytest.raises(TrainingError):
            NegativeSampler(np.empty(0))

    def test_non_finite_rejected(self):
        with pytest.raises(TrainingError):
            NegativeSampler(np.array([1.0, np.inf]))

    def test_negative_frequencies_rejected(self):
        with pytest.raises(TrainingError):
            NegativeSampler.from_frequencies(np.array([-1.0, 2.0]))


class TestSampling:
    def test_sample_shape_and_range(self):
        sampler = NegativeSampler.uniform(10)
        rng = ensure_rng(0)
        draws = sampler.sample(1000, rng)
        assert draws.shape == (1000,)
        assert draws.min() >= 0
        assert draws.max() < 10

    def test_sample_matrix(self):
        sampler = NegativeSampler.uniform(5)
        rng = ensure_rng(0)
        matrix = sampler.sample_matrix(7, 3, rng)
        assert matrix.shape == (7, 3)

    def test_zero_count(self):
        sampler = NegativeSampler.uniform(5)
        rng = ensure_rng(0)
        assert sampler.sample(0, rng).shape == (0,)

    def test_negative_count_rejected(self):
        sampler = NegativeSampler.uniform(5)
        with pytest.raises(TrainingError):
            sampler.sample(-1, ensure_rng(0))

    def test_zero_weight_user_never_drawn(self):
        sampler = NegativeSampler(np.array([0.0, 1.0, 1.0]))
        rng = ensure_rng(0)
        draws = sampler.sample(2000, rng)
        assert 0 not in draws

    def test_empirical_distribution_matches(self):
        weights = np.array([1.0, 3.0])
        sampler = NegativeSampler(weights)
        rng = ensure_rng(42)
        draws = sampler.sample(20000, rng)
        fraction_of_ones = float(np.mean(draws == 1))
        assert fraction_of_ones == pytest.approx(0.75, abs=0.02)

    def test_deterministic_under_seed(self):
        sampler = NegativeSampler.uniform(100)
        a = sampler.sample(50, ensure_rng(5))
        b = sampler.sample(50, ensure_rng(5))
        assert np.array_equal(a, b)


class TestExclude:
    def test_global_exclude_never_drawn(self):
        sampler = NegativeSampler.uniform(6)
        matrix = sampler.sample_matrix(
            200, 4, ensure_rng(0), exclude=np.array([2, 5])
        )
        assert matrix.shape == (200, 4)
        assert not np.isin(matrix, [2, 5]).any()

    def test_per_row_exclude(self):
        sampler = NegativeSampler.uniform(4)
        exclude = np.array([[0, 1], [2, 3], [1, 2]])
        matrix = sampler.sample_matrix(3, 50, ensure_rng(1), exclude=exclude)
        for row, banned in zip(matrix, exclude):
            assert not np.isin(row, banned).any()

    def test_unigram_weights_respected_under_exclusion(self):
        sampler = NegativeSampler(np.array([5.0, 1.0, 1.0]))
        matrix = sampler.sample_matrix(
            400, 2, ensure_rng(2), exclude=np.array([0])
        )
        # Rejection resampling renormalises over the allowed support.
        assert set(np.unique(matrix).tolist()) == {1, 2}

    def test_impossible_exclusion_raises(self):
        sampler = NegativeSampler.uniform(2)
        with pytest.raises(TrainingError, match="collision-free"):
            sampler.sample_matrix(
                2, 2, ensure_rng(0), exclude=np.array([0, 1])
            )

    def test_bad_shape_rejected(self):
        sampler = NegativeSampler.uniform(4)
        with pytest.raises(TrainingError, match="exclude"):
            sampler.sample_matrix(
                3, 2, ensure_rng(0), exclude=np.zeros((2, 1), dtype=np.int64)
            )

    def test_empty_exclude_columns_is_noop(self):
        sampler = NegativeSampler.uniform(4)
        matrix = sampler.sample_matrix(
            3, 2, ensure_rng(0), exclude=np.empty((3, 0), dtype=np.int64)
        )
        assert matrix.shape == (3, 2)
