"""Unit tests for the Inf2vec trainer, including a gradient check."""

import numpy as np
import pytest

from repro.core.context import ContextConfig, InfluenceContext
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.core.negative import NegativeSampler
from repro.errors import NotFittedError, TrainingError
from repro.utils.rng import ensure_rng


class _FixedSampler(NegativeSampler):
    """Sampler returning a pre-set matrix of negatives (for gradient tests)."""

    def __init__(self, matrix: np.ndarray):
        super().__init__(np.ones(int(matrix.max()) + 1))
        self._matrix = matrix

    def sample_matrix(self, rows, cols, rng, exclude=None, metrics=None):
        assert self._matrix.shape == (rows, cols)
        return self._matrix


def _eq4_loss(source, target, sb, tb, u, positives, negatives):
    """Negative Eq. 4 for one context, computed independently."""
    def sigmoid(x):
        return 1.0 / (1.0 + np.exp(-x))

    loss = 0.0
    for j, v in enumerate(positives):
        z_v = source[u] @ target[v] + sb[u] + tb[v]
        loss -= np.log(sigmoid(z_v))
        for w in negatives[j]:
            z_w = source[u] @ target[w] + sb[u] + tb[w]
            loss -= np.log(sigmoid(-z_w))
    return loss


class TestConfig:
    def test_defaults_match_paper(self):
        config = Inf2vecConfig()
        assert config.dim == 50
        assert config.learning_rate == 0.005
        assert config.context.length == 50
        assert config.context.alpha == 0.1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Inf2vecConfig(dim=0)
        with pytest.raises(ValueError):
            Inf2vecConfig(learning_rate=-1)
        with pytest.raises(TrainingError):
            Inf2vecConfig(negative_distribution="gaussian")  # type: ignore[arg-type]
        with pytest.raises(TrainingError):
            Inf2vecConfig(max_norm=0.0)
        with pytest.raises(TrainingError):
            Inf2vecConfig(convergence_tol=-0.1)


class TestGradients:
    def test_update_matches_finite_differences(self):
        rng = ensure_rng(0)
        num_users, dim = 6, 3
        config = Inf2vecConfig(
            dim=dim, learning_rate=1e-3, num_negatives=2, epochs=1, max_norm=None
        )
        model = Inf2vecModel(config, seed=0)
        model.fit_contexts(
            [InfluenceContext(user=0, item=0, local=(1,), global_=())],
            num_users=num_users,
        )
        emb = model.embedding
        # Give the parameters non-trivial values.
        emb.source[:] = rng.normal(scale=0.5, size=emb.source.shape)
        emb.target[:] = rng.normal(scale=0.5, size=emb.target.shape)
        emb.source_bias[:] = rng.normal(scale=0.1, size=num_users)
        emb.target_bias[:] = rng.normal(scale=0.1, size=num_users)

        u = 0
        positives = np.array([1, 2])
        negatives = np.array([[3, 4], [5, 3]])
        sampler = _FixedSampler(negatives)

        before = (
            emb.source.copy(),
            emb.target.copy(),
            emb.source_bias.copy(),
            emb.target_bias.copy(),
        )
        model._update_context(u, positives, sampler, lr=config.learning_rate)
        applied = {
            "source": (emb.source - before[0]) / config.learning_rate,
            "target": (emb.target - before[1]) / config.learning_rate,
            "source_bias": (emb.source_bias - before[2]) / config.learning_rate,
            "target_bias": (emb.target_bias - before[3]) / config.learning_rate,
        }

        # Numeric gradient of the NEGATIVE loss (we do gradient ascent
        # on the log-likelihood).
        eps = 1e-6

        def numeric(array, setter):
            grad = np.zeros_like(array)
            flat = array.ravel()
            for k in range(flat.size):
                original = flat[k]
                flat[k] = original + eps
                up = _eq4_loss(*setter(), u, positives, negatives)
                flat[k] = original - eps
                down = _eq4_loss(*setter(), u, positives, negatives)
                flat[k] = original
                grad.ravel()[k] = -(up - down) / (2 * eps)
            return grad

        s, t, sb, tb = (a.copy() for a in before)
        params = lambda: (s, t, sb, tb)  # noqa: E731
        np.testing.assert_allclose(applied["source"], numeric(s, params), atol=1e-4)
        np.testing.assert_allclose(applied["target"], numeric(t, params), atol=1e-4)
        np.testing.assert_allclose(
            applied["source_bias"], numeric(sb, params), atol=1e-4
        )
        np.testing.assert_allclose(
            applied["target_bias"], numeric(tb, params), atol=1e-4
        )

    def test_biases_frozen_when_disabled(self):
        config = Inf2vecConfig(dim=2, use_biases=False, epochs=2)
        model = Inf2vecModel(config, seed=0)
        corpus = [InfluenceContext(user=0, item=0, local=(1, 2), global_=(3,))]
        model.fit_contexts(corpus, num_users=4)
        assert np.all(model.embedding.source_bias == 0)
        assert np.all(model.embedding.target_bias == 0)


class TestTraining:
    @pytest.fixture
    def corpus(self):
        rng = ensure_rng(3)
        contexts = []
        for _ in range(100):
            user = int(rng.integers(10))
            friends = tuple(
                int((user + off) % 10) for off in (1, 2)
            )
            contexts.append(
                InfluenceContext(user=user, item=0, local=friends, global_=())
            )
        return contexts

    def test_loss_decreases(self, corpus):
        config = Inf2vecConfig(dim=8, epochs=10, learning_rate=0.05)
        model = Inf2vecModel(config, seed=0).fit_contexts(corpus, num_users=10)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_learns_structure(self, corpus):
        """Context members must outscore non-members after training."""
        config = Inf2vecConfig(dim=8, epochs=30, learning_rate=0.05)
        model = Inf2vecModel(config, seed=0).fit_contexts(corpus, num_users=10)
        emb = model.embedding
        in_context = emb.score(0, 1)
        out_of_context = emb.score(0, 5)
        assert in_context > out_of_context

    def test_deterministic_under_seed(self, corpus):
        config = Inf2vecConfig(dim=4, epochs=2)
        a = Inf2vecModel(config, seed=7).fit_contexts(corpus, num_users=10)
        b = Inf2vecModel(config, seed=7).fit_contexts(corpus, num_users=10)
        assert np.array_equal(a.embedding.source, b.embedding.source)

    def test_empty_corpus_trains_to_init(self):
        config = Inf2vecConfig(dim=4, epochs=2)
        model = Inf2vecModel(config, seed=0).fit_contexts([], num_users=5)
        assert model.is_fitted
        assert model.loss_history == [0.0, 0.0]

    def test_convergence_early_stop(self, corpus):
        config = Inf2vecConfig(dim=8, epochs=50, convergence_tol=0.5)
        model = Inf2vecModel(config, seed=0).fit_contexts(corpus, num_users=10)
        assert len(model.loss_history) < 50

    def test_lr_decay_schedule(self):
        config = Inf2vecConfig(learning_rate=0.1, epochs=11)
        model = Inf2vecModel(config, seed=0)
        assert model._epoch_learning_rate(0) == pytest.approx(0.1)
        assert model._epoch_learning_rate(10) == pytest.approx(0.001)
        middle = model._epoch_learning_rate(5)
        assert 0.001 < middle < 0.1

    def test_no_decay_when_disabled(self):
        config = Inf2vecConfig(learning_rate=0.1, epochs=10, lr_decay=False)
        model = Inf2vecModel(config, seed=0)
        assert model._epoch_learning_rate(9) == pytest.approx(0.1)

    def test_max_norm_enforced(self, corpus):
        config = Inf2vecConfig(
            dim=4, epochs=5, learning_rate=5.0, lr_decay=False, max_norm=1.0
        )
        model = Inf2vecModel(config, seed=0).fit_contexts(corpus, num_users=10)
        norms = np.linalg.norm(model.embedding.source, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)


class TestEngines:
    @pytest.fixture
    def corpus(self):
        rng = ensure_rng(13)
        contexts = []
        for _ in range(60):
            user = int(rng.integers(12))
            members = tuple(
                int((user + off) % 12) for off in (1, 2, 5)
            )
            contexts.append(
                InfluenceContext(
                    user=user, item=0, local=members[:1], global_=members[1:]
                )
            )
        return contexts

    def test_invalid_engine_rejected(self):
        with pytest.raises(TrainingError, match="engine"):
            Inf2vecConfig(engine="turbo")  # type: ignore[arg-type]

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            Inf2vecConfig(batch_size=0)

    def test_batch_size_one_matches_sequential(self, corpus):
        """The fused loop at batch_size=1 follows the sequential
        trajectory: same permutations, same negative draws, same
        per-context updates (up to float summation order)."""
        seq_config = Inf2vecConfig(
            dim=6, epochs=3, engine="sequential", max_norm=None
        )
        bat_config = Inf2vecConfig(
            dim=6, epochs=3, engine="batched", batch_size=1, max_norm=None
        )
        a = Inf2vecModel(seq_config, seed=21).fit_contexts(corpus, num_users=12)
        b = Inf2vecModel(bat_config, seed=21).fit_contexts(corpus, num_users=12)
        np.testing.assert_allclose(
            a.embedding.source, b.embedding.source, rtol=1e-7, atol=1e-9
        )
        np.testing.assert_allclose(
            a.embedding.target, b.embedding.target, rtol=1e-7, atol=1e-9
        )
        np.testing.assert_allclose(
            a.loss_history, b.loss_history, rtol=1e-7
        )

    def test_batched_loss_decreases(self, corpus):
        config = Inf2vecConfig(dim=8, epochs=10, learning_rate=0.05)
        model = Inf2vecModel(config, seed=0).fit_contexts(corpus, num_users=12)
        assert model.loss_history[-1] < model.loss_history[0]


class TestEngineEquivalence:
    def test_activation_metrics_match_sequential(self):
        """Table-2 check: under a fixed seed the batched engine must
        reproduce the seed trainer's activation-prediction metrics
        within ±0.01 absolute."""
        from dataclasses import replace

        from repro.core.prediction import EmbeddingPredictor
        from repro.data.synthetic import SyntheticSocialDataset
        from repro.eval.activation import evaluate_activation

        data = SyntheticSocialDataset.digg_like(
            num_users=400, num_items=200, seed=11
        )
        train, _tune, test = data.log.split((0.8, 0.1, 0.1), seed=5)
        base = Inf2vecConfig(
            dim=16,
            epochs=12,
            learning_rate=0.01,
            context=ContextConfig(length=15, alpha=0.2),
        )
        results = {}
        for engine in ("sequential", "batched"):
            model = Inf2vecModel(replace(base, engine=engine), seed=3).fit(
                data.graph, train
            )
            results[engine] = evaluate_activation(
                EmbeddingPredictor(model.embedding), data.graph, test
            )
        sequential, batched = results["sequential"], results["batched"]
        assert abs(sequential.auc - batched.auc) <= 0.01, (
            sequential.auc,
            batched.auc,
        )
        assert abs(sequential.map - batched.map) <= 0.01, (
            sequential.map,
            batched.map,
        )


class TestLifecycle:
    def test_unfitted_access_raises(self):
        model = Inf2vecModel(Inf2vecConfig(dim=4))
        with pytest.raises(NotFittedError):
            _ = model.embedding
        with pytest.raises(NotFittedError):
            model.train_epoch([])

    def test_fit_end_to_end(self, small_dataset, small_splits):
        train, _tune, _test = small_splits
        config = Inf2vecConfig(
            dim=4, epochs=2, context=ContextConfig(length=6, alpha=0.5)
        )
        model = Inf2vecModel(config, seed=0).fit(small_dataset.graph, train)
        assert model.is_fitted
        assert model.embedding.num_users == small_dataset.graph.num_nodes

    def test_regenerate_contexts_mode(self, small_dataset, small_splits):
        train, _tune, _test = small_splits
        config = Inf2vecConfig(
            dim=4,
            epochs=3,
            regenerate_contexts=True,
            context=ContextConfig(length=6, alpha=0.5),
        )
        model = Inf2vecModel(config, seed=0).fit(small_dataset.graph, train)
        assert len(model.loss_history) == 3

    def test_repr(self):
        model = Inf2vecModel(Inf2vecConfig(dim=4))
        assert "unfitted" in repr(model)


class TestConvergenceCriterion:
    """Regression tests for the convergence predicate.

    The original ``_converged`` compared ``abs(previous - loss)`` so a
    loss that *increased* by less than the tolerance — or blew up past
    it between checks of a diverging run — could still read as
    converged.  Convergence now requires a relative *decrease* in
    ``[0, tol)``.
    """

    def test_diverging_loss_sequence_never_converges(self):
        from repro.core.inf2vec import loss_converged

        diverging = [1.0, 1.002, 1.05, 1.4, 2.9, 11.0, float("inf")]
        for previous, current in zip(diverging, diverging[1:]):
            assert not loss_converged(previous, current, tol=0.01), (
                previous, current,
            )

    def test_small_relative_decrease_converges(self):
        from repro.core.inf2vec import loss_converged

        assert loss_converged(1.0, 0.9999, tol=0.01)
        assert loss_converged(1.0, 1.0, tol=0.01)

    def test_large_decrease_keeps_training(self):
        from repro.core.inf2vec import loss_converged

        assert not loss_converged(1.0, 0.5, tol=0.01)

    def test_tol_zero_disables(self):
        from repro.core.inf2vec import loss_converged

        assert not loss_converged(1.0, 1.0, tol=0.0)

    def test_first_epoch_never_converges(self):
        from repro.core.inf2vec import loss_converged

        assert not loss_converged(float("inf"), 1.0, tol=0.5)

    def test_model_converged_rejects_increase(self):
        model = Inf2vecModel(Inf2vecConfig(dim=4, convergence_tol=0.01))
        assert not model._converged(1.0, 1.001)
        assert model._converged(1.0, 0.9995)

    def test_diverging_training_runs_the_full_budget(self):
        """A run whose loss climbs must not stop early as 'converged'."""
        rng = ensure_rng(5)
        contexts = [
            InfluenceContext(
                user=int(rng.integers(10)),
                item=0,
                local=(int(rng.integers(10)),),
                global_=(),
            )
            for _ in range(40)
        ]
        config = Inf2vecConfig(
            dim=4,
            epochs=6,
            learning_rate=80.0,  # absurd step size: loss oscillates up
            lr_decay=False,
            max_norm=None,
            convergence_tol=0.05,
        )
        model = Inf2vecModel(config, seed=0).fit_contexts(contexts, num_users=10)
        history = model.loss_history
        if len(history) < config.epochs:
            # Early stop is only legal on a genuine small relative
            # *decrease* — never on an increase, however small.
            decrease = (history[-2] - history[-1]) / abs(history[-2])
            assert 0.0 <= decrease < config.convergence_tol, history[-2:]


class TestAnnealedScheduleBudget:
    """The anneal denominator follows the *effective* epoch budget."""

    def test_floor_depends_on_budget_not_config(self):
        from repro.core.inf2vec import annealed_learning_rate

        # Last epoch of any budget lands on the 1% floor.
        assert annealed_learning_rate(0.1, 4, 5) == pytest.approx(0.001)
        assert annealed_learning_rate(0.1, 9, 10) == pytest.approx(0.001)
        assert annealed_learning_rate(0.1, 0, 5) == pytest.approx(0.1)

    def test_single_epoch_budget_keeps_base_rate(self):
        from repro.core.inf2vec import annealed_learning_rate

        assert annealed_learning_rate(0.1, 0, 1) == pytest.approx(0.1)

    def test_decay_disabled(self):
        from repro.core.inf2vec import annealed_learning_rate

        assert annealed_learning_rate(0.1, 7, 8, decay=False) == pytest.approx(0.1)

    def test_model_method_accepts_budget_override(self):
        model = Inf2vecModel(Inf2vecConfig(learning_rate=0.1, epochs=20))
        assert model._epoch_learning_rate(2, total_epochs=3) == pytest.approx(
            0.001
        )
        # Without the override the denominator is the configured budget.
        assert model._epoch_learning_rate(2) > 0.01
