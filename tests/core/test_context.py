"""Unit tests for influence-context generation (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.context import (
    ContextConfig,
    ContextGenerator,
    InfluenceContext,
    batched_random_walk_with_restart,
    corpus_statistics,
    generate_context,
    generate_episode_contexts,
    generate_episode_contexts_batched,
    random_walk_with_restart,
    sample_global_context,
)
from repro.core.propagation import PropagationNetwork
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import TrainingError
from repro.utils.rng import ensure_rng


@pytest.fixture
def chain_network() -> PropagationNetwork:
    """0 -> 1 -> 2 -> 3 propagation chain."""
    return PropagationNetwork(
        0,
        np.array([0, 1, 2, 3]),
        np.array([[0, 1], [1, 2], [2, 3]]),
    )


class TestContextConfig:
    def test_budget_split(self):
        config = ContextConfig(length=50, alpha=0.1)
        assert config.local_budget == 5
        assert config.global_budget == 45

    def test_alpha_extremes(self):
        assert ContextConfig(length=10, alpha=1.0).global_budget == 0
        assert ContextConfig(length=10, alpha=0.0).local_budget == 0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ContextConfig(length=0)
        with pytest.raises(ValueError):
            ContextConfig(alpha=1.5)
        with pytest.raises(ValueError):
            ContextConfig(restart_prob=-0.1)


class TestRandomWalk:
    def test_budget_respected(self, chain_network):
        rng = ensure_rng(0)
        visited = random_walk_with_restart(chain_network, 0, 7, 0.5, rng)
        assert len(visited) == 7

    def test_only_reachable_nodes_visited(self, chain_network):
        rng = ensure_rng(0)
        visited = random_walk_with_restart(chain_network, 1, 20, 0.5, rng)
        assert set(visited) <= {2, 3}

    def test_start_never_recorded(self, chain_network):
        rng = ensure_rng(0)
        visited = random_walk_with_restart(chain_network, 0, 30, 0.5, rng)
        assert 0 not in visited

    def test_sink_returns_empty(self, chain_network):
        rng = ensure_rng(0)
        assert random_walk_with_restart(chain_network, 3, 10, 0.5, rng) == []

    def test_zero_budget(self, chain_network):
        rng = ensure_rng(0)
        assert random_walk_with_restart(chain_network, 0, 0, 0.5, rng) == []

    def test_high_restart_stays_near_start(self, chain_network):
        rng = ensure_rng(7)
        visited = random_walk_with_restart(chain_network, 0, 200, 0.95, rng)
        # With near-certain restart, node 1 (first hop) dominates.
        assert visited.count(1) > visited.count(3)

    def test_no_restart_reaches_deep(self, chain_network):
        rng = ensure_rng(7)
        visited = random_walk_with_restart(chain_network, 0, 50, 0.0, rng)
        assert 3 in visited


class TestBatchedRandomWalk:
    def test_budget_and_reachability_per_walker(self, chain_network):
        rng = ensure_rng(0)
        walks = batched_random_walk_with_restart(
            chain_network, np.array([0, 1, 2, 3]), 6, 0.5, rng
        )
        assert len(walks) == 4
        assert walks[0].shape[0] == 6 and set(walks[0].tolist()) <= {1, 2, 3}
        assert walks[1].shape[0] == 6 and set(walks[1].tolist()) <= {2, 3}
        # 2's only successor is 3, so every visit is 3.
        assert walks[2].tolist() == [3] * 6
        # 3 is a sink: no successors at all means an empty walk.
        assert walks[3].shape[0] == 0

    def test_zero_budget(self, chain_network):
        walks = batched_random_walk_with_restart(
            chain_network, np.array([0, 2]), 0, 0.5, ensure_rng(0)
        )
        assert [w.shape[0] for w in walks] == [0, 0]

    def test_dead_end_restarts_without_recording(self):
        # 0 -> 1 and nothing else: the walk bounces 0 -> 1 (recorded),
        # dead-ends at 1, restarts home unrecorded, and repeats.  With
        # restart_prob 0 the only way home is the dead-end restart.
        net = PropagationNetwork(0, np.array([0, 1]), np.array([[0, 1]]))
        walks = batched_random_walk_with_restart(
            net, np.array([0]), 5, 0.0, ensure_rng(0)
        )
        assert walks[0].tolist() == [1] * 5

    def test_start_never_recorded(self, chain_network):
        walks = batched_random_walk_with_restart(
            chain_network, np.array([0]), 40, 0.5, ensure_rng(1)
        )
        assert 0 not in walks[0].tolist()

    def test_deterministic_under_seed(self, chain_network):
        starts = np.array([0, 1, 2])
        a = batched_random_walk_with_restart(
            chain_network, starts, 8, 0.5, ensure_rng(3)
        )
        b = batched_random_walk_with_restart(
            chain_network, starts, 8, 0.5, ensure_rng(3)
        )
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestGlobalContext:
    def test_samples_exclude_self(self, chain_network):
        rng = ensure_rng(0)
        samples = sample_global_context(chain_network, 1, 50, rng)
        assert len(samples) == 50
        assert 1 not in samples
        assert set(samples) <= {0, 2, 3}

    def test_single_adopter_empty(self):
        net = PropagationNetwork(0, np.array([4]), np.empty((0, 2), dtype=np.int64))
        rng = ensure_rng(0)
        assert sample_global_context(net, 4, 10, rng) == []

    def test_zero_budget(self, chain_network):
        rng = ensure_rng(0)
        assert sample_global_context(chain_network, 0, 0, rng) == []


class TestGenerateContext:
    def test_components_sized_by_alpha(self, chain_network):
        rng = ensure_rng(0)
        config = ContextConfig(length=20, alpha=0.5)
        context = generate_context(chain_network, 0, config, rng)
        assert len(context.local) == 10
        assert len(context.global_) == 10
        assert context.users == context.local + context.global_

    def test_sink_user_still_gets_global(self, chain_network):
        rng = ensure_rng(0)
        config = ContextConfig(length=10, alpha=0.5)
        context = generate_context(chain_network, 3, config, rng)
        assert context.local == ()
        assert len(context.global_) == 5

    def test_episode_contexts_cover_adopters(self, chain_network):
        rng = ensure_rng(0)
        config = ContextConfig(length=10, alpha=0.5)
        contexts = generate_episode_contexts(chain_network, config, rng)
        assert {c.user for c in contexts} == {0, 1, 2, 3}
        assert all(c.item == 0 for c in contexts)

    def test_singleton_episode_produces_nothing(self):
        net = PropagationNetwork(0, np.array([4]), np.empty((0, 2), dtype=np.int64))
        rng = ensure_rng(0)
        contexts = generate_episode_contexts(net, ContextConfig(length=10), rng)
        assert contexts == []


class TestContextGenerator:
    def test_generates_for_all_episodes(self, tiny_graph, tiny_log):
        generator = ContextGenerator(
            tiny_graph, ContextConfig(length=6, alpha=0.5), seed=0
        )
        corpus = generator.generate(tiny_log)
        assert len(corpus) > 0
        assert {c.item for c in corpus} == {0, 1}

    def test_deterministic_under_seed(self, tiny_graph, tiny_log):
        config = ContextConfig(length=6, alpha=0.5)
        a = ContextGenerator(tiny_graph, config, seed=9).generate(tiny_log)
        b = ContextGenerator(tiny_graph, config, seed=9).generate(tiny_log)
        assert a == b

    def test_rejects_oversized_log(self, tiny_graph):
        log = ActionLog(
            [DiffusionEpisode(0, [(6, 1.0)])], num_users=7
        )
        generator = ContextGenerator(tiny_graph, seed=0)
        with pytest.raises(TrainingError, match="graph only"):
            generator.generate(log)

    def test_validates_by_max_id_not_universe_size(self, tiny_graph):
        # The log's declared universe is larger than the graph, but
        # every referenced user fits — that must be accepted; only an
        # out-of-range ID is an error.
        log = ActionLog(
            [DiffusionEpisode(0, [(1, 1.0), (3, 2.0)])], num_users=100
        )
        corpus = ContextGenerator(
            tiny_graph, ContextConfig(length=4, alpha=0.5), seed=0
        ).generate(log)
        assert {c.user for c in corpus} == {1, 3}

    def test_batched_matches_sequential_structure(self, tiny_graph, tiny_log):
        # Context sizes are structural (a walk is empty iff the start
        # has no successors; the global slice is empty iff the user is
        # the only adopter), so both engines must agree on them even
        # though the sampled members differ draw by draw.
        config = ContextConfig(length=6, alpha=0.5)
        seq = ContextGenerator(
            tiny_graph, config, seed=3, batched=False
        ).generate(tiny_log)
        bat = ContextGenerator(
            tiny_graph, config, seed=3, batched=True
        ).generate(tiny_log)
        key = lambda c: (c.item, c.user, len(c.local), len(c.global_))  # noqa: E731
        assert sorted(map(key, seq)) == sorted(map(key, bat))

    def test_batched_deterministic_under_seed(self, tiny_graph, tiny_log):
        config = ContextConfig(length=6, alpha=0.5)
        a = ContextGenerator(tiny_graph, config, seed=9, batched=True).generate(
            tiny_log
        )
        b = ContextGenerator(tiny_graph, config, seed=9, batched=True).generate(
            tiny_log
        )
        assert a == b


class TestBatchedEpisodeContexts:
    def test_matches_sequential_membership_constraints(self, chain_network):
        config = ContextConfig(length=10, alpha=0.5)
        contexts = generate_episode_contexts_batched(
            chain_network, config, ensure_rng(0)
        )
        assert {c.user for c in contexts} == {0, 1, 2, 3}
        for context in contexts:
            # Global samples never include the center user.
            assert context.user not in context.global_
            assert len(context.global_) == 5

    def test_singleton_episode_produces_nothing(self):
        net = PropagationNetwork(
            0, np.array([4]), np.empty((0, 2), dtype=np.int64)
        )
        contexts = generate_episode_contexts_batched(
            net, ContextConfig(length=10), ensure_rng(0)
        )
        assert contexts == []


class TestCorpusStatistics:
    def test_empty(self):
        stats = corpus_statistics([])
        assert stats["num_tuples"] == 0
        assert stats["mean_context_size"] == 0.0

    def test_counts(self):
        contexts = [
            InfluenceContext(user=0, item=0, local=(1, 2), global_=(3,)),
            InfluenceContext(user=1, item=0, local=(), global_=(0,)),
        ]
        stats = corpus_statistics(contexts)
        assert stats["num_tuples"] == 2
        assert stats["total_context_users"] == 4
        assert stats["mean_context_size"] == 2.0
        assert stats["local_fraction"] == 0.5
