"""Unit tests for the Eq. 7 / Eq. 8 predictors."""

import numpy as np
import pytest

from repro.core.embeddings import InfluenceEmbedding
from repro.core.prediction import EmbeddingPredictor, ICPredictor
from repro.data.graph import SocialGraph
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import EvaluationError


@pytest.fixture
def embedding() -> InfluenceEmbedding:
    source = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
    target = np.array([[0.0, 2.0], [1.0, 0.0], [1.0, 1.0]])
    return InfluenceEmbedding(
        source, target, np.array([0.0, 0.5, 0.0]), np.array([0.0, 0.0, -0.5])
    )


class TestEmbeddingPredictor:
    def test_ave_activation(self, embedding):
        predictor = EmbeddingPredictor(embedding, "ave")
        # x(0,2) = 1 + 0 - 0.5 = 0.5 ; x(1,2) = 1 + 0.5 - 0.5 = 1.0
        assert predictor.activation_score(2, [0, 1]) == pytest.approx(0.75)

    def test_latest_activation_uses_last_friend(self, embedding):
        predictor = EmbeddingPredictor(embedding, "latest")
        assert predictor.activation_score(2, [0, 1]) == pytest.approx(1.0)
        assert predictor.activation_score(2, [1, 0]) == pytest.approx(0.5)

    def test_empty_friends_rejected(self, embedding):
        predictor = EmbeddingPredictor(embedding)
        with pytest.raises(EvaluationError):
            predictor.activation_score(2, [])

    @pytest.mark.parametrize("name", ["ave", "sum", "max", "latest"])
    def test_diffusion_matches_manual_aggregation(self, embedding, name):
        predictor = EmbeddingPredictor(embedding, name)
        seeds = [0, 1]
        scores = predictor.diffusion_scores(seeds)
        pairwise = np.array(
            [[embedding.score(s, v) for v in range(3)] for s in seeds]
        )
        expected = {
            "ave": pairwise.mean(axis=0),
            "sum": pairwise.sum(axis=0),
            "max": pairwise.max(axis=0),
            "latest": pairwise[-1],
        }[name]
        np.testing.assert_allclose(scores, expected)

    def test_diffusion_empty_seeds_rejected(self, embedding):
        with pytest.raises(EvaluationError):
            EmbeddingPredictor(embedding).diffusion_scores([])

    def test_custom_callable_aggregator(self, embedding):
        predictor = EmbeddingPredictor(embedding, lambda s: float(np.min(s)))
        assert predictor.activation_score(2, [0, 1]) == pytest.approx(0.5)
        scores = predictor.diffusion_scores([0, 1])
        assert scores.shape == (3,)

    def test_aggregator_name_exposed(self, embedding):
        assert EmbeddingPredictor(embedding, "Max").aggregator_name == "max"

    def test_custom_callable_named_like_builtin_is_honoured(self, embedding):
        """Regression: dispatch keyed on whether a callable was supplied.

        The old code dispatched on ``__name__``, so a custom callable
        named ``max`` was silently replaced by the builtin max path.
        """

        def max(scores):  # noqa: A001 - the collision is the point
            return float(np.min(scores))  # deliberately NOT a maximum

        predictor = EmbeddingPredictor(embedding, max)
        assert predictor.aggregator_name == "max"
        scores = predictor.diffusion_scores([0, 1])
        builtin = EmbeddingPredictor(embedding, "max").diffusion_scores([0, 1])
        minimum = EmbeddingPredictor(
            embedding, lambda s: float(np.min(s))
        ).diffusion_scores([0, 1])
        np.testing.assert_array_equal(scores, minimum)
        assert not np.array_equal(scores, builtin)

    def test_diffusion_never_builds_dense_user_matrix(self, embedding):
        """Blocked scoring is bitwise-stable across block sizes."""
        from repro.serve.scoring import aggregated_scores

        reference = EmbeddingPredictor(embedding, "ave").diffusion_scores([0, 1])
        for block_size in (1, 2, 1024):
            blocked = aggregated_scores(embedding, [0, 1], "ave", block_size)
            np.testing.assert_array_equal(blocked, reference)


class TestICPredictor:
    @pytest.fixture
    def predictor(self) -> ICPredictor:
        graph = SocialGraph(4, [(0, 2), (1, 2), (2, 3)])
        probs = EdgeProbabilities.from_dict(
            graph, {(0, 2): 0.5, (1, 2): 0.5, (2, 3): 1.0}
        )
        return ICPredictor(probs, num_runs=2000, seed=0)

    def test_eq8_activation(self, predictor):
        # 1 - (1-0.5)(1-0.5) = 0.75
        assert predictor.activation_score(2, [0, 1]) == pytest.approx(0.75)

    def test_non_edges_contribute_zero(self, predictor):
        assert predictor.activation_score(2, [3]) == pytest.approx(0.0)
        assert predictor.activation_score(2, [0, 3]) == pytest.approx(0.5)

    def test_empty_friends_rejected(self, predictor):
        with pytest.raises(EvaluationError):
            predictor.activation_score(2, [])

    def test_diffusion_scores_frequencies(self, predictor):
        scores = predictor.diffusion_scores([0, 1])
        assert scores[0] == 1.0 and scores[1] == 1.0  # seeds always active
        assert scores[2] == pytest.approx(0.75, abs=0.03)
        # node 3 activates iff node 2 does (P=1 edge).
        assert scores[3] == pytest.approx(scores[2], abs=0.03)

    def test_diffusion_empty_seeds_rejected(self, predictor):
        with pytest.raises(EvaluationError):
            predictor.diffusion_scores([])

    def test_num_runs_validated(self, predictor):
        with pytest.raises(ValueError):
            ICPredictor(predictor.probabilities, num_runs=0)
