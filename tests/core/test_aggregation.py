"""Unit tests for the Eq. 7 aggregation functions."""

import numpy as np
import pytest

from repro.core.aggregation import AGGREGATORS, ave, get_aggregator, latest, maximum, total
from repro.errors import EvaluationError


class TestAggregators:
    SCORES = np.array([1.0, -2.0, 4.0])

    def test_ave(self):
        assert ave(self.SCORES) == pytest.approx(1.0)

    def test_sum(self):
        assert total(self.SCORES) == pytest.approx(3.0)

    def test_max(self):
        assert maximum(self.SCORES) == pytest.approx(4.0)

    def test_latest_takes_last(self):
        assert latest(self.SCORES) == pytest.approx(4.0)
        assert latest(np.array([5.0, 1.0])) == pytest.approx(1.0)

    def test_single_element_all_agree(self):
        for aggregator in AGGREGATORS.values():
            assert aggregator(np.array([2.5])) == pytest.approx(2.5)

    @pytest.mark.parametrize("name", ["ave", "sum", "max", "latest"])
    def test_empty_rejected(self, name):
        with pytest.raises(EvaluationError, match="empty"):
            AGGREGATORS[name](np.array([]))

    @pytest.mark.parametrize("name", ["ave", "sum", "max", "latest"])
    def test_multidimensional_rejected(self, name):
        with pytest.raises(EvaluationError, match="1-D"):
            AGGREGATORS[name](np.zeros((2, 2)))


class TestLookup:
    def test_case_insensitive(self):
        assert get_aggregator("AVE") is ave
        assert get_aggregator(" Max ") is maximum

    def test_unknown_rejected(self):
        with pytest.raises(EvaluationError, match="unknown aggregator"):
            get_aggregator("median")

    def test_registry_complete(self):
        assert set(AGGREGATORS) == {"ave", "sum", "max", "latest"}
