"""Unit tests for per-episode propagation networks (Definition 3)."""

import numpy as np
import pytest

from repro.core.propagation import PropagationNetwork, build_propagation_networks
from repro.data.actionlog import DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import GraphError


class TestFromEpisode:
    def test_fig5_network(self, tiny_graph, fig5_episode):
        net = PropagationNetwork.from_episode(tiny_graph, fig5_episode)
        assert net.num_nodes == 5
        assert net.num_edges == 4
        assert {tuple(e) for e in net.edge_array()} == {
            (3, 4),
            (1, 2),
            (3, 0),
            (2, 0),
        }

    def test_successors_and_predecessors(self, tiny_graph, fig5_episode):
        net = PropagationNetwork.from_episode(tiny_graph, fig5_episode)
        assert sorted(net.successors(3).tolist()) == [0, 4]
        assert net.predecessors(0) == [3, 2] or sorted(net.predecessors(0)) == [2, 3]
        assert net.successors(4).tolist() == []
        assert net.out_degree(3) == 2
        assert net.out_degree(4) == 0

    def test_roots(self, tiny_graph, fig5_episode):
        net = PropagationNetwork.from_episode(tiny_graph, fig5_episode)
        # u4 (3) and u2 (1) have no influencing predecessor.
        assert sorted(net.roots()) == [1, 3]

    def test_isolated_adopters_kept_in_nodes(self):
        graph = SocialGraph(3, [(0, 1)])
        episode = DiffusionEpisode(0, [(2, 1.0), (0, 2.0), (1, 3.0)])
        net = PropagationNetwork.from_episode(graph, episode)
        assert 2 in net.nodes.tolist()
        assert net.out_degree(2) == 0

    def test_is_acyclic(self, tiny_graph, fig5_episode):
        net = PropagationNetwork.from_episode(tiny_graph, fig5_episode)
        assert net.is_acyclic()

    def test_item_preserved(self, tiny_graph, fig5_episode):
        net = PropagationNetwork.from_episode(tiny_graph, fig5_episode)
        assert net.item == fig5_episode.item


class TestValidation:
    def test_edge_endpoint_must_be_adopter(self):
        with pytest.raises(GraphError, match="not an adopter"):
            PropagationNetwork(
                0, np.array([0, 1]), np.array([[0, 2]])
            )

    def test_manual_cycle_detected(self):
        # is_acyclic() exists to catch corrupted third-party inputs.
        net = PropagationNetwork(
            0, np.array([0, 1]), np.array([[0, 1], [1, 0]])
        )
        assert not net.is_acyclic()


class TestBuildAll:
    def test_keyed_by_item(self, tiny_graph, tiny_log):
        networks = build_propagation_networks(tiny_graph, tiny_log)
        assert set(networks) == {0, 1}
        assert networks[0].item == 0
        assert networks[1].num_nodes == 3
