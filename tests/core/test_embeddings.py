"""Unit tests for the influence-embedding parameter store."""

import numpy as np
import pytest

from repro.core.embeddings import InfluenceEmbedding
from repro.errors import TrainingError


@pytest.fixture
def embedding() -> InfluenceEmbedding:
    source = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    target = np.array([[2.0, 0.0], [0.0, 3.0], [1.0, -1.0]])
    return InfluenceEmbedding(
        source, target, np.array([0.1, 0.2, 0.3]), np.array([-0.1, 0.0, 0.1])
    )


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(TrainingError, match="!="):
            InfluenceEmbedding(
                np.zeros((3, 2)), np.zeros((3, 3)), np.zeros(3), np.zeros(3)
            )

    def test_bias_shape_rejected(self):
        with pytest.raises(TrainingError, match="bias"):
            InfluenceEmbedding(
                np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(2), np.zeros(3)
            )

    def test_non_matrix_rejected(self):
        with pytest.raises(TrainingError, match="2-D"):
            InfluenceEmbedding(np.zeros(3), np.zeros(3), np.zeros(3), np.zeros(3))

    def test_initialize_ranges(self):
        emb = InfluenceEmbedding.initialize(100, 10, seed=0)
        bound = 1.0 / 10
        assert emb.source.shape == (100, 10)
        assert np.all(np.abs(emb.source) <= bound)
        assert np.all(np.abs(emb.target) <= bound)
        assert np.all(emb.source_bias == 0)
        assert np.all(emb.target_bias == 0)

    def test_initialize_deterministic(self):
        a = InfluenceEmbedding.initialize(10, 4, seed=3)
        b = InfluenceEmbedding.initialize(10, 4, seed=3)
        assert np.array_equal(a.source, b.source)

    def test_initialize_validates(self):
        with pytest.raises(ValueError):
            InfluenceEmbedding.initialize(0, 5)
        with pytest.raises(ValueError):
            InfluenceEmbedding.initialize(5, 0)


class TestScoring:
    def test_score_formula(self, embedding):
        # x(0, 1) = S_0 . T_1 + b_0 + bt_1 = 0 + 0.1 + 0.0
        assert embedding.score(0, 1) == pytest.approx(0.1)
        # x(2, 0) = (1,1).(2,0) + 0.3 - 0.1 = 2.2
        assert embedding.score(2, 0) == pytest.approx(2.2)

    def test_score_pairs_vectorised(self, embedding):
        scores = embedding.score_pairs([0, 2], [1, 0])
        assert scores.tolist() == pytest.approx([0.1, 2.2])

    def test_score_pairs_shape_mismatch(self, embedding):
        with pytest.raises(TrainingError, match="differ"):
            embedding.score_pairs([0, 1], [0])

    def test_scores_from_matches_scalar(self, embedding):
        row = embedding.scores_from(2)
        expected = [embedding.score(2, v) for v in range(3)]
        assert row.tolist() == pytest.approx(expected)

    def test_scores_onto_matches_scalar(self, embedding):
        col = embedding.scores_onto(0, [1, 2])
        expected = [embedding.score(1, 0), embedding.score(2, 0)]
        assert col.tolist() == pytest.approx(expected)

    def test_combined_vectors(self, embedding):
        combined = embedding.combined_vectors()
        assert combined.shape == (3, 4)
        assert combined[0].tolist() == [1.0, 0.0, 2.0, 0.0]


class TestPersistence:
    def test_save_load_roundtrip(self, embedding, tmp_path):
        path = tmp_path / "model.npz"
        embedding.save(path)
        loaded = InfluenceEmbedding.load(path)
        assert np.array_equal(loaded.source, embedding.source)
        assert np.array_equal(loaded.target, embedding.target)
        assert np.array_equal(loaded.source_bias, embedding.source_bias)
        assert np.array_equal(loaded.target_bias, embedding.target_bias)

    def test_bare_path_roundtrip(self, embedding, tmp_path):
        """save() appends .npz (numpy would anyway); load() must match."""
        returned = embedding.save(tmp_path / "model")
        assert returned == tmp_path / "model.npz"
        loaded = InfluenceEmbedding.load(tmp_path / "model")  # bare too
        assert np.array_equal(loaded.source, embedding.source)

    def test_save_is_atomic_under_failure(self, embedding, tmp_path, monkeypatch):
        path = tmp_path / "model.npz"
        embedding.save(path)
        before = path.read_bytes()
        monkeypatch.setattr(
            np, "savez_compressed", lambda *a, **k: (_ for _ in ()).throw(OSError("disk full"))
        )
        with pytest.raises(OSError):
            embedding.save(path)
        assert path.read_bytes() == before  # previous version intact
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]

    def test_copy_is_deep(self, embedding):
        clone = embedding.copy()
        clone.source[0, 0] = 99.0
        assert embedding.source[0, 0] == 1.0

    def test_properties(self, embedding):
        assert embedding.num_users == 3
        assert embedding.dim == 2
        assert "num_users=3" in repr(embedding)
