"""Unit tests for incremental training and the temporal split."""

import numpy as np
import pytest

from repro.core.context import ContextConfig
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import ActionLogError, NotFittedError, TrainingError


class TestPartialFit:
    @pytest.fixture
    def graph(self) -> SocialGraph:
        edges = [(u, (u + 1) % 8) for u in range(8)]
        edges += [(u, (u + 2) % 8) for u in range(8)]
        return SocialGraph(8, edges)

    @pytest.fixture
    def logs(self):
        early = ActionLog(
            [
                DiffusionEpisode(i, [(i % 8, 1.0), ((i + 1) % 8, 2.0)])
                for i in range(10)
            ],
            num_users=8,
        )
        late = ActionLog(
            [
                DiffusionEpisode(100 + i, [(i % 8, 1.0), ((i + 2) % 8, 2.0)])
                for i in range(10)
            ],
            num_users=8,
        )
        return early, late

    def test_updates_parameters(self, graph, logs):
        early, late = logs
        config = Inf2vecConfig(
            dim=4, epochs=3, context=ContextConfig(length=4, alpha=0.5)
        )
        model = Inf2vecModel(config, seed=0).fit(graph, early)
        before = model.embedding.source.copy()
        model.partial_fit(graph, late, epochs=2)
        assert not np.array_equal(before, model.embedding.source)

    def test_extends_loss_history(self, graph, logs):
        early, late = logs
        config = Inf2vecConfig(
            dim=4, epochs=3, context=ContextConfig(length=4, alpha=0.5)
        )
        model = Inf2vecModel(config, seed=0).fit(graph, early)
        history_before = len(model.loss_history)
        model.partial_fit(graph, late, epochs=2)
        assert len(model.loss_history) == history_before + 2

    def test_learns_new_pattern(self, graph):
        """New episodes teaching a fresh pair must raise its within-source
        margin (raw scores carry a per-source bias that legitimately
        shifts as b_4 calibrates, so the margin over the source's other
        targets is the learned quantity)."""
        early = ActionLog(
            [DiffusionEpisode(i, [(0, 1.0), (1, 2.0)]) for i in range(15)],
            num_users=8,
        )
        late = ActionLog(
            [DiffusionEpisode(100 + i, [(4, 1.0), (6, 2.0)]) for i in range(15)],
            num_users=8,
        )
        config = Inf2vecConfig(
            dim=4,
            epochs=10,
            learning_rate=0.05,
            context=ContextConfig(length=4, alpha=1.0),
        )
        model = Inf2vecModel(config, seed=0).fit(graph, early)

        def margin() -> float:
            row = model.embedding.scores_from(4)
            return float(row[6] - np.median(row))

        before = margin()
        model.partial_fit(graph, late, epochs=10)
        assert margin() > before

    def test_unfitted_rejected(self, graph, logs):
        _early, late = logs
        model = Inf2vecModel(Inf2vecConfig(dim=4), seed=0)
        with pytest.raises(NotFittedError):
            model.partial_fit(graph, late)

    def test_universe_mismatch_rejected(self, graph, logs):
        early, _late = logs
        config = Inf2vecConfig(dim=4, epochs=1)
        model = Inf2vecModel(config, seed=0).fit(graph, early)
        bigger = SocialGraph(20, [(0, 1)])
        with pytest.raises(TrainingError, match="fitted"):
            model.partial_fit(bigger, ActionLog([], num_users=20))

    def test_zero_epochs_is_noop(self, graph, logs):
        early, late = logs
        config = Inf2vecConfig(dim=4, epochs=2)
        model = Inf2vecModel(config, seed=0).fit(graph, early)
        before = model.embedding.source.copy()
        history_before = model.loss_history
        model.partial_fit(graph, late, epochs=0)
        assert np.array_equal(before, model.embedding.source)
        assert model.loss_history == history_before

    def test_negative_epochs_rejected(self, graph, logs):
        early, late = logs
        config = Inf2vecConfig(dim=4, epochs=2)
        model = Inf2vecModel(config, seed=0).fit(graph, early)
        with pytest.raises(TrainingError, match="epochs"):
            model.partial_fit(graph, late, epochs=-1)

    def test_empty_new_log_is_noop(self, graph, logs):
        early, _late = logs
        config = Inf2vecConfig(dim=4, epochs=2)
        model = Inf2vecModel(config, seed=0).fit(graph, early)
        before = model.embedding.source.copy()
        model.partial_fit(graph, ActionLog([], num_users=8))
        assert np.array_equal(before, model.embedding.source)


class TestTemporalSplit:
    @pytest.fixture
    def log(self) -> ActionLog:
        episodes = [
            DiffusionEpisode(i, [(i % 5, float(10 * i)), ((i + 1) % 5, 10.0 * i + 1)])
            for i in range(10)
        ]
        return ActionLog(episodes, num_users=5)

    def test_partitions_chronologically(self, log):
        train, test = log.split_temporal((0.7, 0.3))
        assert len(train) == 7
        assert len(test) == 3
        latest_train = max(ep.times.max() for ep in train)
        earliest_test = min(ep.times.min() for ep in test)
        assert latest_train < earliest_test

    def test_covers_all_episodes(self, log):
        parts = log.split_temporal((0.5, 0.3, 0.2))
        items = sorted(item for part in parts for item in part.items())
        assert items == sorted(log.items())

    def test_deterministic(self, log):
        a = log.split_temporal((0.5, 0.5))
        b = log.split_temporal((0.5, 0.5))
        assert a[0].items() == b[0].items()

    def test_empty_episodes_sort_first(self):
        episodes = [
            DiffusionEpisode(0, [(0, 100.0)]),
            DiffusionEpisode(1, []),
        ]
        log = ActionLog(episodes, num_users=2)
        first, _second = log.split_temporal((0.5, 0.5))
        assert first.items() == [1]

    def test_bad_fractions(self, log):
        with pytest.raises(ActionLogError):
            log.split_temporal((0.5, 0.4))
        with pytest.raises(ActionLogError):
            log.split_temporal(())


class TestPartialFitSchedule:
    """Regression pin: the anneal denominator is the call's budget.

    ``partial_fit(epochs=N)`` used to decay the learning rate over
    ``config.epochs`` — a short incremental update on a model
    configured for many epochs barely decayed at all (or, worse,
    indexed past the configured budget).  The schedule must now match
    what a fresh run with ``epochs=N`` would use.
    """

    @pytest.fixture
    def graph(self) -> SocialGraph:
        edges = [(u, (u + 1) % 8) for u in range(8)]
        edges += [(u, (u + 2) % 8) for u in range(8)]
        return SocialGraph(8, edges)

    @pytest.fixture
    def logs(self):
        early = ActionLog(
            [
                DiffusionEpisode(i, [(i % 8, 1.0), ((i + 1) % 8, 2.0)])
                for i in range(10)
            ],
            num_users=8,
        )
        late = ActionLog(
            [
                DiffusionEpisode(100 + i, [(i % 8, 1.0), ((i + 2) % 8, 2.0)])
                for i in range(10)
            ],
            num_users=8,
        )
        return early, late

    def _observed_rates(self, model, graph, log, epochs):
        observed = []
        inner = model.train_epoch

        def spy(corpus, sampler=None, learning_rate=None, batch_size=None):
            observed.append(learning_rate)
            return inner(
                corpus, sampler, learning_rate=learning_rate,
                batch_size=batch_size,
            )

        model.train_epoch = spy
        try:
            model.partial_fit(graph, log, epochs=epochs)
        finally:
            del model.train_epoch  # restore the bound method
        return observed

    def test_partial_fit_anneals_over_its_own_budget(self, graph, logs):
        from repro.core.inf2vec import annealed_learning_rate

        early, late = logs
        config = Inf2vecConfig(
            dim=4,
            epochs=12,
            learning_rate=0.1,
            context=ContextConfig(length=4, alpha=0.5),
        )
        model = Inf2vecModel(config, seed=0).fit(graph, early)
        observed = self._observed_rates(model, graph, late, epochs=3)

        expected = [
            annealed_learning_rate(config.learning_rate, epoch, 3)
            for epoch in range(3)
        ]
        assert observed == pytest.approx(expected)
        # Final incremental epoch reaches the schedule floor — under the
        # old config.epochs=12 denominator it would still sit at ~83%
        # of the base rate.
        assert observed[-1] == pytest.approx(0.001)

    def test_partial_fit_matches_fresh_config_with_same_budget(
        self, graph, logs
    ):
        from repro.core.inf2vec import annealed_learning_rate

        early, late = logs
        incremental_config = Inf2vecConfig(
            dim=4,
            epochs=12,
            learning_rate=0.1,
            context=ContextConfig(length=4, alpha=0.5),
        )
        model = Inf2vecModel(incremental_config, seed=0).fit(graph, early)
        observed = self._observed_rates(model, graph, late, epochs=5)

        fresh_config = Inf2vecConfig(
            dim=4,
            epochs=5,
            learning_rate=0.1,
            context=ContextConfig(length=4, alpha=0.5),
        )
        fresh = Inf2vecModel(fresh_config, seed=0)
        expected = [fresh._epoch_learning_rate(epoch) for epoch in range(5)]
        assert observed == pytest.approx(expected)

    def test_partial_fit_default_budget_is_config_epochs(self, graph, logs):
        early, late = logs
        config = Inf2vecConfig(
            dim=4,
            epochs=3,
            learning_rate=0.1,
            context=ContextConfig(length=4, alpha=0.5),
        )
        model = Inf2vecModel(config, seed=0).fit(graph, early)
        observed = self._observed_rates(model, graph, late, epochs=None)
        assert len(observed) == config.epochs
        assert observed[-1] == pytest.approx(0.001)
