"""Unit tests for influence-pair extraction (Definition 1, Fig 5)."""

import numpy as np
import pytest

from repro.core.pairs import (
    extract_all_pairs,
    extract_episode_pairs,
    frequency_histogram,
    pair_frequencies,
)
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph


class TestFig5Example:
    """The paper's worked example must come out exactly."""

    def test_extracts_paper_pairs(self, tiny_graph, fig5_episode):
        pairs = {tuple(p) for p in extract_episode_pairs(tiny_graph, fig5_episode)}
        # Paper: {(u4->u5), (u2->u3), (u4->u1), (u3->u1)}
        assert pairs == {(3, 4), (1, 2), (3, 0), (2, 0)}

    def test_u1_to_u2_not_extracted(self, tiny_graph, fig5_episode):
        # The edge u1 -> u2 exists but u1 adopted AFTER u2.
        pairs = {tuple(p) for p in extract_episode_pairs(tiny_graph, fig5_episode)}
        assert (0, 1) not in pairs


class TestExtraction:
    def test_requires_edge(self):
        graph = SocialGraph(3, [(0, 1)])
        episode = DiffusionEpisode(0, [(0, 1.0), (2, 2.0)])
        assert extract_episode_pairs(graph, episode).shape == (0, 2)

    def test_requires_strict_time_order(self):
        graph = SocialGraph(2, [(0, 1), (1, 0)])
        episode = DiffusionEpisode(0, [(0, 1.0), (1, 1.0)])  # simultaneous
        assert extract_episode_pairs(graph, episode).shape == (0, 2)

    def test_direction_follows_edge(self):
        graph = SocialGraph(2, [(0, 1)])
        forward = DiffusionEpisode(0, [(0, 1.0), (1, 2.0)])
        backward = DiffusionEpisode(1, [(1, 1.0), (0, 2.0)])
        assert [tuple(p) for p in extract_episode_pairs(graph, forward)] == [(0, 1)]
        # 1 adopted first but the edge (1, 0) does not exist.
        assert extract_episode_pairs(graph, backward).shape == (0, 2)

    def test_empty_episode(self, tiny_graph):
        episode = DiffusionEpisode(0, [])
        assert extract_episode_pairs(tiny_graph, episode).shape == (0, 2)

    def test_all_pairs_carry_items(self, tiny_graph, tiny_log):
        pairs = extract_all_pairs(tiny_graph, tiny_log)
        items = {p.item for p in pairs}
        assert items <= {0, 1}
        assert all(tiny_graph.has_edge(p.source, p.target) for p in pairs)


class TestFrequencies:
    def test_counts_match_manual(self, tiny_graph, tiny_log):
        freqs = pair_frequencies(tiny_graph, tiny_log)
        # Episode 0 pairs: (3,4),(1,2),(3,0),(2,0); episode 1: 0,1,2 in
        # order -> (0,1) edge exists, (1,2) edge exists -> pairs (0,1),(1,2).
        assert freqs.total_pairs == 6
        assert freqs.source_counts.tolist() == [1, 2, 1, 2, 0]
        assert freqs.target_counts.tolist() == [2, 1, 2, 0, 1]
        assert freqs.pair_counts[(1, 2)] == 2

    def test_top_pairs_ranked_by_count(self, tiny_graph, tiny_log):
        freqs = pair_frequencies(tiny_graph, tiny_log)
        top = freqs.top_pairs(1)
        assert top == [(1, 2)]

    def test_top_pairs_bounds(self, tiny_graph, tiny_log):
        freqs = pair_frequencies(tiny_graph, tiny_log)
        assert len(freqs.top_pairs(100)) == len(freqs.pair_counts)
        assert freqs.top_pairs(0) == []
        with pytest.raises(ValueError):
            freqs.top_pairs(-1)

    def test_empty_log(self, tiny_graph):
        log = ActionLog([], num_users=5)
        freqs = pair_frequencies(tiny_graph, log)
        assert freqs.total_pairs == 0
        assert freqs.top_pairs(5) == []


class TestHistogram:
    def test_excludes_zeros(self):
        assert frequency_histogram([0, 0, 1, 1, 2]) == {1: 2, 2: 1}

    def test_empty(self):
        assert frequency_histogram([]) == {}
        assert frequency_histogram([0, 0]) == {}

    def test_sorted_keys(self):
        hist = frequency_histogram([5, 1, 5, 3])
        assert list(hist) == [1, 3, 5]
