"""Shared fixtures: hand-built graphs/episodes and small generated datasets."""

from __future__ import annotations

import pytest

from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.data.synthetic import SyntheticSocialDataset


@pytest.fixture
def tiny_graph() -> SocialGraph:
    """The paper's Fig 5 five-user network (plus an edge for variety).

    Edges (u -> v means v watches u and can be influenced by u):
    u1=0, u2=1, u3=2, u4=3, u5=4.
    """
    return SocialGraph(
        5,
        [
            (3, 4),  # u4 -> u5
            (1, 2),  # u2 -> u3
            (3, 0),  # u4 -> u1
            (2, 0),  # u3 -> u1
            (0, 1),  # u1 -> u2
        ],
    )


@pytest.fixture
def fig5_episode() -> DiffusionEpisode:
    """The paper's Fig 5 episode: u4, u2, u3, u5, u1 in time order."""
    return DiffusionEpisode(
        0, [(3, 1.0), (1, 2.0), (2, 3.0), (4, 4.0), (0, 5.0)]
    )


@pytest.fixture
def tiny_log(fig5_episode: DiffusionEpisode) -> ActionLog:
    """A two-episode log over the Fig 5 network."""
    second = DiffusionEpisode(1, [(0, 1.0), (1, 2.0), (2, 3.0)])
    return ActionLog([fig5_episode, second], num_users=5)


@pytest.fixture(scope="session")
def small_dataset() -> SyntheticSocialDataset:
    """A session-cached Digg-like dataset big enough to train on."""
    return SyntheticSocialDataset.digg_like(num_users=150, num_items=60, seed=11)


@pytest.fixture(scope="session")
def small_splits(small_dataset: SyntheticSocialDataset):
    """(train, tune, test) splits of the session dataset."""
    return small_dataset.log.split((0.8, 0.1, 0.1), seed=11)
