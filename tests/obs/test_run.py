"""Unit tests for run recording: manifests, scopes, resolution."""

import pytest

from repro.core.inf2vec import Inf2vecConfig
from repro.obs.run import (
    MANIFEST_VERSION,
    NULL_RUN,
    RunRecorder,
    active_metrics,
    active_run,
    config_fingerprint,
    recording,
    resolve_run,
)


class TestFingerprint:
    def test_dataclass_fingerprint_is_stable(self):
        a = config_fingerprint(Inf2vecConfig(dim=32))
        b = config_fingerprint(Inf2vecConfig(dim=32))
        assert a == b
        assert len(a[1]) == 16

    def test_fingerprint_distinguishes_configs(self):
        _, fp_a = config_fingerprint(Inf2vecConfig(dim=32))
        _, fp_b = config_fingerprint(Inf2vecConfig(dim=64))
        assert fp_a != fp_b

    def test_mapping_and_fallback(self):
        payload, _ = config_fingerprint({"dim": 8})
        assert payload == {"dim": 8}
        payload, _ = config_fingerprint(object())
        assert "repr" in payload


class TestManifest:
    def test_round_trip(self, tmp_path):
        run = RunRecorder(name="unit")
        run.set_config(Inf2vecConfig(dim=16, epochs=2))
        run.set_dataset(num_users=100, num_episodes=20)
        run.annotate(seed="7")
        run.metrics.counter("train.epochs").inc(2)
        run.metrics.gauge("train.epoch.loss").set(0.5, epoch=0)
        with run.span("fit"):
            with run.span("epoch", epoch=0):
                pass

        path = run.write(tmp_path / "run.json")
        loaded = RunRecorder.load_manifest(path)

        assert loaded["manifest_version"] == MANIFEST_VERSION
        assert loaded["name"] == "unit"
        assert loaded["config"]["values"]["dim"] == 16
        assert loaded["config"]["fingerprint"] == (
            config_fingerprint(Inf2vecConfig(dim=16, epochs=2))[1]
        )
        assert loaded["dataset"] == {"num_users": 100, "num_episodes": 20}
        assert loaded["annotations"] == {"seed": "7"}
        assert loaded["metrics"] == run.metrics.snapshot()
        assert loaded["spans"][0]["name"] == "fit"
        assert loaded["spans"][0]["children"][0]["name"] == "epoch"

    def test_write_trace(self, tmp_path):
        run = RunRecorder()
        with run.span("a"):
            pass
        path = run.write_trace(tmp_path / "trace.jsonl")
        assert path.read_text().count('"name": "a"') == 1


class TestScopes:
    def test_default_is_null(self):
        assert active_run() is NULL_RUN
        assert active_metrics().enabled is False

    def test_recording_scope_activates_and_restores(self):
        run = RunRecorder()
        with recording(run):
            assert active_run() is run
            assert active_metrics() is run.metrics
        assert active_run() is NULL_RUN

    def test_scopes_nest_innermost_wins(self):
        outer, inner = RunRecorder(), RunRecorder()
        with recording(outer):
            with recording(inner):
                assert active_run() is inner
            assert active_run() is outer

    def test_scope_restored_on_exception(self):
        run = RunRecorder()
        with pytest.raises(ValueError):
            with recording(run):
                raise ValueError
        assert active_run() is NULL_RUN


class TestResolveRun:
    def test_ambient_scope_wins_over_telemetry_flag(self):
        ambient = RunRecorder()
        with recording(ambient):
            assert resolve_run(telemetry=True) is ambient

    def test_telemetry_flag_creates_fresh_recorder(self):
        run = resolve_run(telemetry=True, name="fresh")
        assert run.enabled and run.name == "fresh"

    def test_disabled_resolves_to_null(self):
        assert resolve_run(telemetry=False) is NULL_RUN


class TestNullRun:
    def test_null_run_is_inert(self):
        NULL_RUN.set_config(Inf2vecConfig())
        NULL_RUN.set_dataset(num_users=5)
        NULL_RUN.annotate(x=1)
        with NULL_RUN.span("s"):
            pass
        assert NULL_RUN.manifest() == {}
        assert NULL_RUN.metrics.enabled is False
        assert NULL_RUN.tracer.enabled is False
