"""Prometheus exposition rendering, periodic export, flush-on-exit hooks."""

import json
import signal
import time
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, RunRecorder, recording
from repro.obs.export import (
    EXPOSITION_FILENAME,
    PeriodicExporter,
    on_process_exit,
    prometheus_name,
    render_prometheus,
)
from repro.obs.export import _EXIT_CALLBACKS, _run_exit_callbacks


class TestPrometheusName:
    def test_dots_become_underscores(self):
        assert prometheus_name("serve.query.seconds") == "serve_query_seconds"

    def test_leading_digit_prefixed(self):
        assert prometheus_name("2fast") == "_2fast"

    def test_colons_survive(self):
        assert prometheus_name("ns:metric") == "ns:metric"


class TestRenderPrometheus:
    @pytest.fixture
    def registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("app.requests", "requests").inc(3, route="a")
        registry.gauge("app.depth", "queue depth").set(7.0)
        registry.histogram("app.seconds", (0.1, 1.0), "latency").observe_many(
            [0.05, 0.5, 2.0]
        )
        registry.summary("app.latency", quantiles=(0.5,)).observe_many(
            [1.0, 2.0, 3.0]
        )
        return registry

    def test_all_instrument_kinds_render(self, registry):
        text = render_prometheus(registry.snapshot())
        assert '# TYPE app_requests counter' in text
        assert 'app_requests{route="a"} 3.0' in text
        assert '# TYPE app_depth gauge' in text
        assert '# TYPE app_seconds histogram' in text
        assert '# TYPE app_latency summary' in text

    def test_histogram_buckets_are_cumulative(self, registry):
        lines = render_prometheus(registry.snapshot()).splitlines()
        buckets = [l for l in lines if l.startswith("app_seconds_bucket")]
        assert buckets == [
            'app_seconds_bucket{le="0.1"} 1',
            'app_seconds_bucket{le="1.0"} 2',
            'app_seconds_bucket{le="+Inf"} 3',
        ]
        assert "app_seconds_count 3" in lines
        assert "app_seconds_sum 2.55" in lines

    def test_summary_quantiles_and_count(self, registry):
        lines = render_prometheus(registry.snapshot()).splitlines()
        assert 'app_latency{quantile="0.5"} 2.0' in lines
        assert "app_latency_count 3" in lines
        assert "app_latency_sum 6.0" in lines

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(kind='say "hi"\n')
        text = render_prometheus(registry.snapshot())
        assert 'kind="say \\"hi\\"\\n"' in text


class TestPeriodicExporter:
    def test_flush_writes_all_three_files(self, tmp_path):
        run = RunRecorder(name="t")
        with recording(run):
            run.metrics.counter("c").inc()
            with run.span("s"):
                pass
        exporter = PeriodicExporter(run, tmp_path / "tele", every=60.0)
        exporter.flush()
        assert (tmp_path / "tele" / EXPOSITION_FILENAME).is_file()
        manifest = json.loads((tmp_path / "tele" / "manifest.json").read_text())
        assert "c" in manifest["metrics"]
        trace = (tmp_path / "tele" / "trace.jsonl").read_text()
        assert json.loads(trace.splitlines()[0])["name"] == "s"

    def test_background_thread_flushes_repeatedly(self, tmp_path):
        run = RunRecorder(name="t")
        exporter = PeriodicExporter(run, tmp_path, every=0.02)
        exporter.start(install_exit_hooks=False)
        try:
            deadline = time.monotonic() + 5.0
            while exporter.flush_count < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            exporter.stop()
        assert exporter.flush_count >= 3
        assert not any(
            p.name.startswith(".") for p in Path(tmp_path).iterdir()
        ), "no temp files may linger after atomic replaces"

    def test_context_manager_and_stop_flush(self, tmp_path):
        run = RunRecorder(name="t")
        with PeriodicExporter(run, tmp_path, every=60.0) as exporter:
            started = exporter.flush_count
            assert started >= 1  # start() writes an initial snapshot
        assert exporter.flush_count >= started + 1  # stop() flushes again
        assert exporter._thread is None

    def test_rejects_non_positive_cadence(self, tmp_path):
        with pytest.raises(ValueError, match="cadence"):
            PeriodicExporter(RunRecorder(name="t"), tmp_path, every=0)


class TestOnProcessExit:
    def test_callback_runs_and_unregisters(self):
        calls = []
        unregister = on_process_exit(lambda: calls.append(1), signals=())
        _run_exit_callbacks()
        assert calls == [1]
        unregister()
        _run_exit_callbacks()
        assert calls == [1]

    def test_failing_callback_does_not_block_others(self):
        calls = []

        def boom():
            raise RuntimeError("flush failed")

        first = on_process_exit(boom, signals=())
        second = on_process_exit(lambda: calls.append(2), signals=())
        try:
            _run_exit_callbacks()
        finally:
            first()
            second()
        assert calls == [2]

    def test_sigterm_handler_installed_on_main_thread(self):
        unregister = on_process_exit(lambda: None)
        try:
            handler = signal.getsignal(signal.SIGTERM)
            assert callable(handler)
            assert handler.__name__ == "_signal_handler"
        finally:
            unregister()
