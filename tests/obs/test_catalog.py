"""The telemetry catalog: declarations, lookups, and gate round-trips.

The catalog is the single source of truth the ``telemetry-contract``
project rule checks instrumentation sites against; these tests pin its
own invariants and close the loop the other way — every checked-in
benchmark baseline leaf must be declared, and every regression-gate
pattern must bite at least one declared leaf.
"""

from __future__ import annotations

import json
from fnmatch import fnmatchcase
from pathlib import Path

import pytest

from repro.obs.catalog import (
    GATED_BENCH_LEAVES,
    METRIC_CATALOG,
    MetricSpec,
    catalog_names,
    find_spec,
    validate_catalog,
)
from repro.obs.regress import DEFAULT_POLICIES, REPORT_FILES, flatten_numeric

BASELINE_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"


def _gate_hits(leaf: str, pattern: str) -> bool:
    return fnmatchcase(leaf, pattern) or fnmatchcase(pattern, leaf)


class TestCatalogInvariants:
    def test_specs_are_well_formed(self):
        kinds = {"counter", "gauge", "histogram", "summary", "span"}
        for spec in METRIC_CATALOG:
            assert isinstance(spec, MetricSpec)
            assert spec.name and spec.kind in kinds
            assert isinstance(spec.labels, tuple)

    def test_validate_passes_on_shipped_catalog(self):
        validate_catalog(METRIC_CATALOG)

    def test_duplicate_spec_rejected(self):
        duplicated = (
            MetricSpec("x.y", "counter", (), "a"),
            MetricSpec("x.y", "counter", (), "b"),
        )
        with pytest.raises(ValueError, match="duplicate"):
            validate_catalog(duplicated)

    def test_same_name_different_kind_allowed(self):
        validate_catalog(
            (
                MetricSpec("x.y", "counter", (), "a"),
                MetricSpec("x.y", "span", (), "b"),
            )
        )


class TestLookups:
    def test_catalog_names_filters_by_kind(self):
        counters = catalog_names("counter")
        assert counters
        assert set(counters) <= set(catalog_names())
        assert all(find_spec(name, "counter") for name in counters)

    def test_exact_match_beats_family_pattern(self):
        assert find_spec("serve.batch.size") is not None
        # A concrete name covered only by the family falls through to it.
        family = find_spec("diffusion.ic.simulations")
        assert family is not None and family.name == "diffusion.*.simulations"

    def test_unknown_name_returns_none(self):
        assert find_spec("no.such.metric") is None
        assert find_spec(catalog_names("counter")[0], "no-such-kind") is None

    def test_matches_respects_glob(self):
        spec = MetricSpec("serve.batch.*", "histogram", (), "")
        assert spec.matches("serve.batch.wait_ms")
        assert not spec.matches("serve.single.wait_ms")


class TestGateRoundTrip:
    """The checked-in baselines, the gate patterns, and the catalog agree."""

    def test_gated_reports_are_the_shipped_reports(self):
        assert set(GATED_BENCH_LEAVES) == set(REPORT_FILES)
        assert set(DEFAULT_POLICIES) <= set(GATED_BENCH_LEAVES)

    @pytest.mark.parametrize("report", sorted(GATED_BENCH_LEAVES))
    def test_declared_leaves_exist_in_baselines(self, report):
        path = BASELINE_DIR / report
        if not path.is_file():
            pytest.skip(f"{report} baseline not checked in")
        leaves = flatten_numeric(json.loads(path.read_text()))
        assert leaves, f"{report} flattened to nothing"
        for pattern in GATED_BENCH_LEAVES[report]:
            assert any(
                _gate_hits(leaf, pattern) for leaf in leaves
            ), f"{report}: declared leaf {pattern!r} is stale (no baseline hit)"

    @pytest.mark.parametrize("report", sorted(DEFAULT_POLICIES))
    def test_gated_baseline_leaves_are_declared(self, report):
        path = BASELINE_DIR / report
        if not path.is_file():
            pytest.skip(f"{report} baseline not checked in")
        leaves = flatten_numeric(json.loads(path.read_text()))
        declared = GATED_BENCH_LEAVES[report]
        gated = [
            leaf
            for leaf in leaves
            if any(policy.matches(leaf) for policy in DEFAULT_POLICIES[report])
        ]
        assert gated, f"{report}: no baseline leaf is gated at all"
        for leaf in gated:
            assert any(
                _gate_hits(leaf, pattern) for pattern in declared
            ), f"{report}: gated leaf {leaf!r} not declared in GATED_BENCH_LEAVES"

    @pytest.mark.parametrize("report", sorted(DEFAULT_POLICIES))
    def test_every_gate_pattern_is_live(self, report):
        declared = GATED_BENCH_LEAVES[report]
        for policy in DEFAULT_POLICIES[report]:
            assert any(
                _gate_hits(leaf, policy.pattern) for leaf in declared
            ), f"{report}: gate {policy.pattern!r} matches no declared leaf"
