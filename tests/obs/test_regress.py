"""The perf-regression gate: policies, comparison, and CLI exit codes."""

import json

import pytest

from repro.obs.regress import (
    DEFAULT_POLICIES,
    MetricPolicy,
    compare_reports,
    flatten_numeric,
    format_findings,
    main,
)


class TestFlattenNumeric:
    def test_nested_numeric_leaves(self):
        flat = flatten_numeric(
            {"a": 1, "b": {"c": 2.5, "d": {"e": 3}}, "s": "text"}
        )
        assert flat == {"a": 1.0, "b.c": 2.5, "b.d.e": 3.0}

    def test_booleans_and_nulls_skipped(self):
        assert flatten_numeric({"ok": True, "x": None, "n": 4}) == {"n": 4.0}


class TestMetricPolicy:
    def test_lower_direction_regression_sign(self):
        policy = MetricPolicy("*", "lower", 0.5)
        assert policy.regression(1.0, 2.0) == pytest.approx(1.0)  # 2x worse
        assert policy.regression(1.0, 0.5) == pytest.approx(-0.5)  # better

    def test_higher_direction_regression_sign(self):
        policy = MetricPolicy("*", "higher", 0.5)
        assert policy.regression(100.0, 40.0) == pytest.approx(0.6)  # worse
        assert policy.regression(100.0, 150.0) == pytest.approx(-0.5)

    def test_pattern_matching_crosses_dots(self):
        policy = MetricPolicy("workloads.*.p50_ms", "lower", 0.5)
        assert policy.matches("workloads.single_scan.p50_ms")
        assert not policy.matches("workloads.single_scan.qps")

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            MetricPolicy("*", "sideways", 0.5)

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError, match="max_regression"):
            MetricPolicy("*", "lower", 0.0)


class TestCompareReports:
    POLICIES = (
        MetricPolicy("latency.*", "lower", 0.75),
        MetricPolicy("qps", "higher", 0.5),
    )

    def test_identical_reports_pass(self):
        report = {"latency": {"p50": 1.0}, "qps": 100.0, "unrelated": 5}
        findings = compare_reports(report, report, self.POLICIES)
        assert len(findings) == 2  # 'unrelated' matched no policy
        assert not any(f.regressed for f in findings)

    def test_doubled_latency_regresses(self):
        base = {"latency": {"p50": 1.0}}
        cur = {"latency": {"p50": 2.0}}
        (finding,) = compare_reports(base, cur, self.POLICIES)
        assert finding.regressed
        assert finding.regression == pytest.approx(1.0)

    def test_missing_gated_leaf_regresses(self):
        base = {"latency": {"p50": 1.0}}
        (finding,) = compare_reports(base, {}, self.POLICIES)
        assert finding.current is None
        assert finding.regressed
        assert "missing" in format_findings([finding])

    def test_new_leaves_in_current_ignored(self):
        base = {"qps": 100.0}
        cur = {"qps": 100.0, "latency": {"p50": 999.0}}
        findings = compare_reports(base, cur, self.POLICIES)
        assert [f.path for f in findings] == ["qps"]


@pytest.fixture
def report_dirs(tmp_path):
    """Baseline and current dirs seeded with identical minimal reports."""
    serving = {
        "workloads": {
            "single_scan": {"p50_ms": 1.0, "p99_ms": 2.0, "qps": 1000.0}
        }
    }
    training = {
        "context_generation": {"batched_seconds": 0.5, "speedup": 4.0},
        "train_epoch": {"batched_seconds": 2.0, "speedup": 5.0},
    }
    influence_max = {
        "presets": {
            "digg_like": {
                "speedup_ris_vs_mc": 30.0,
                "methods": {
                    "ris": {"selection_seconds": 0.4, "spread": 22.0},
                    "mc_greedy": {"selection_seconds": 12.0, "spread": 21.0},
                },
            }
        }
    }
    base, cur = tmp_path / "base", tmp_path / "cur"
    for directory in (base, cur):
        directory.mkdir()
        (directory / "BENCH_serving.json").write_text(json.dumps(serving))
        (directory / "BENCH_training.json").write_text(json.dumps(training))
        (directory / "BENCH_influence_max.json").write_text(
            json.dumps(influence_max)
        )
    return base, cur


def _gate(base, cur, *extra):
    return main(
        ["--baseline-dir", str(base), "--current-dir", str(cur), *extra]
    )


class TestMain:
    def test_identical_reports_exit_zero(self, report_dirs, capsys):
        base, cur = report_dirs
        assert _gate(base, cur) == 0
        assert "within budget" in capsys.readouterr().out

    def test_injected_2x_latency_fails_the_gate(self, report_dirs, capsys):
        base, cur = report_dirs
        report = json.loads((cur / "BENCH_serving.json").read_text())
        report["workloads"]["single_scan"]["p50_ms"] *= 2.0
        (cur / "BENCH_serving.json").write_text(json.dumps(report))
        assert _gate(base, cur) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_report_only_never_fails(self, report_dirs, capsys):
        base, cur = report_dirs
        report = json.loads((cur / "BENCH_serving.json").read_text())
        report["workloads"]["single_scan"]["p50_ms"] *= 10.0
        (cur / "BENCH_serving.json").write_text(json.dumps(report))
        assert _gate(base, cur, "--report-only") == 0
        assert "report-only" in capsys.readouterr().out

    def test_missing_report_is_usage_error(self, report_dirs, capsys):
        base, cur = report_dirs
        (cur / "BENCH_serving.json").unlink()
        assert _gate(base, cur) == 2
        assert "missing" in capsys.readouterr().out

    def test_unreadable_report_is_usage_error(self, report_dirs, capsys):
        base, cur = report_dirs
        (cur / "BENCH_training.json").write_text("{not json")
        assert _gate(base, cur) == 2
        assert "unreadable" in capsys.readouterr().out

    def test_report_flag_limits_scope(self, report_dirs):
        base, cur = report_dirs
        (cur / "BENCH_training.json").unlink()
        assert _gate(base, cur, "--report", "BENCH_serving.json") == 0


class TestCheckedInBaselines:
    def test_default_policies_cover_all_reports(self):
        assert set(DEFAULT_POLICIES) == {
            "BENCH_serving.json",
            "BENCH_training.json",
            "BENCH_influence_max.json",
        }

    def test_latency_budgets_catch_a_2x_slowdown(self):
        # Acceptance: a genuine 2x latency regression (=+100% relative)
        # must exceed every latency budget.
        for policies in DEFAULT_POLICIES.values():
            for policy in policies:
                if policy.direction == "lower":
                    assert policy.max_regression < 1.0, policy
