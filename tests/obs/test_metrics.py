"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    TelemetryError,
)


class TestCounter:
    def test_increments_accumulate(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "test counter")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_series_are_independent(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(epoch=0)
        counter.inc(3, epoch=1)
        assert counter.value(epoch=0) == 1.0
        assert counter.value(epoch=1) == 3.0
        assert counter.value(epoch=2) == 0.0
        assert counter.total() == 4.0

    def test_label_order_is_canonical(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(a=1, b=2)
        counter.inc(b=2, a=1)
        assert counter.value(a=1, b=2) == 2.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(TelemetryError):
            counter.inc(-1.0)

    def test_thread_safety_smoke(self):
        counter = MetricsRegistry().counter("c")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 8000.0


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1.0, epoch=0)
        gauge.set(0.5, epoch=0)
        assert gauge.value(epoch=0) == 0.5

    def test_unset_label_reads_none(self):
        assert MetricsRegistry().gauge("g").value(epoch=9) is None


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 5.0))
        # (..,1], (1,2], (2,5], (5,..) — upper edges inclusive.
        hist.observe(1.0)
        hist.observe(1.5)
        hist.observe(2.0)
        hist.observe(5.1)
        samples = hist.to_dict()["samples"][""]
        assert samples["buckets"] == [1.0, 2.0, 5.0]
        assert samples["counts"] == [1, 2, 0, 1]
        assert samples["count"] == 4
        assert samples["sum"] == pytest.approx(9.6)
        assert samples["mean"] == pytest.approx(9.6 / 4)

    def test_observe_many_matches_scalar_observes(self):
        registry = MetricsRegistry()
        batch = registry.histogram("batch", buckets=(0.0, 10.0, 20.0))
        scalar = registry.histogram("scalar", buckets=(0.0, 10.0, 20.0))
        values = np.array([0.0, 3.0, 10.0, 11.0, 25.0])
        batch.observe_many(values)
        for v in values:
            scalar.observe(float(v))
        assert (
            batch.to_dict()["samples"][""]["counts"]
            == scalar.to_dict()["samples"][""]["counts"]
        )

    def test_empty_batch_is_noop(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe_many([])
        assert hist.count() == 0

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError):
            registry.gauge("x")
        with pytest.raises(TelemetryError):
            registry.histogram("x", buckets=(1.0,))

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(TelemetryError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_snapshot_is_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(epoch=1)
        registry.gauge("g").set(0.25)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        snapshot = registry.snapshot()
        assert sorted(snapshot) == ["c", "g", "h"]
        assert snapshot["c"]["samples"] == {"epoch=1": 1.0}
        json.dumps(snapshot)  # must not raise

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.names() == []


class TestNullRegistry:
    def test_disabled_and_silent(self):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("c").inc(5)
        NULL_REGISTRY.gauge("g").set(1.0)
        NULL_REGISTRY.histogram("h", buckets=(1.0,)).observe(0.5)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.counter("c").value() == 0.0

    def test_shared_instrument_instance(self):
        # One no-op object for everything: the hot path never allocates.
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.gauge("b")


class TestSummary:
    def test_quantiles_exact_under_reservoir_capacity(self):
        rng = np.random.default_rng(2)
        data = rng.lognormal(mean=-7.0, sigma=0.8, size=500)
        summary = MetricsRegistry().summary("s", quantiles=(0.5, 0.99))
        summary.observe_many(data)
        for q in (0.5, 0.99):
            assert summary.quantile(q) == pytest.approx(
                float(np.quantile(data, q))
            )

    def test_labelled_series_are_independent(self):
        summary = MetricsRegistry().summary("s", quantiles=(0.5,))
        summary.observe_many([1.0, 2.0, 3.0], path="a")
        summary.observe(100.0, path="b")
        assert summary.quantile(0.5, path="a") == pytest.approx(2.0)
        assert summary.quantile(0.5, path="b") == pytest.approx(100.0)
        assert summary.quantile(0.5, path="never") is None

    def test_p2_backend_tracks_declared_quantiles_only(self):
        summary = MetricsRegistry().summary(
            "s", quantiles=(0.5, 0.9), backend="p2"
        )
        rng = np.random.default_rng(4)
        data = rng.normal(size=2000)
        summary.observe_many(data)
        assert summary.quantile(0.9) == pytest.approx(
            float(np.quantile(data, 0.9)), rel=0.05
        )
        with pytest.raises(TelemetryError):
            summary.quantile(0.75)  # undeclared target under p2

    def test_snapshot_carries_quantiles_and_moments(self):
        import json

        registry = MetricsRegistry()
        registry.summary("s", quantiles=(0.5,)).observe_many([1.0, 3.0])
        sample = registry.snapshot()["s"]["samples"][""]
        assert sample["count"] == 2
        assert sample["sum"] == pytest.approx(4.0)
        assert sample["min"] == 1.0 and sample["max"] == 3.0
        assert sample["quantiles"]["0.5"] == pytest.approx(2.0)
        json.dumps(registry.snapshot())  # must not raise

    def test_quantile_target_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.summary("s", quantiles=(0.5,))
        with pytest.raises(TelemetryError):
            registry.summary("s", quantiles=(0.9,))

    def test_type_mismatch_with_histogram_raises(self):
        registry = MetricsRegistry()
        registry.histogram("m", buckets=(1.0,))
        with pytest.raises(TelemetryError):
            registry.summary("m")

    def test_unknown_backend_rejected(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().summary("s", backend="magic")

    def test_null_summary_is_silent(self):
        summary = NULL_REGISTRY.summary("s")
        summary.observe(1.0)
        assert summary.quantile(0.5) is None


class TestHistogramQuantile:
    def test_interpolates_within_buckets(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe_many([0.5, 1.5, 1.5, 3.0])
        # p50 falls in the (1, 2] bucket; interpolation stays inside it.
        assert 1.0 <= hist.quantile(0.5) <= 2.0

    def test_overflow_quantile_clamps_to_last_edge(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe_many([5.0, 6.0])
        assert hist.quantile(0.99) == 1.0

    def test_empty_reads_none(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        assert hist.quantile(0.5) is None


class TestConcurrencyHammer:
    def test_parallel_writes_snapshots_and_renders(self):
        """N writer threads vs a snapshotting reader vs an exporter."""
        from repro.obs.export import render_prometheus

        registry = MetricsRegistry()
        errors = []
        stop = threading.Event()
        per_thread, num_writers = 500, 6

        def writer(tid: int) -> None:
            try:
                for i in range(per_thread):
                    registry.counter("hammer.count").inc(thread=tid)
                    registry.histogram(
                        "hammer.seconds", buckets=(0.5, 1.0)
                    ).observe(i % 2, thread=tid)
                    registry.summary(
                        "hammer.latency", quantiles=(0.5,)
                    ).observe(float(i), thread=tid)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader() -> None:
            try:
                while not stop.is_set():
                    render_prometheus(registry.snapshot())
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(tid,))
            for tid in range(num_writers)
        ]
        snapshotter = threading.Thread(target=reader)
        snapshotter.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        snapshotter.join()

        assert errors == []
        for tid in range(num_writers):
            assert registry.counter("hammer.count").value(
                thread=tid
            ) == pytest.approx(per_thread)
            assert (
                registry.summary("hammer.latency", quantiles=(0.5,)).count(
                    thread=tid
                )
                == per_thread
            )
        # The final render must parse as complete exposition text.
        text = render_prometheus(registry.snapshot())
        assert "hammer_count" in text and "hammer_latency_count" in text
