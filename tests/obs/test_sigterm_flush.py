"""SIGTERM flush smoke test: a killed CLI run still persists telemetry.

The PR 3 SIGKILL test proves checkpoints survive an un-catchable kill;
this is its telemetry sibling for the catchable one.  A ``repro.cli
train`` subprocess running with ``--metrics-out`` and
``--telemetry-dir`` is sent SIGTERM mid-run.  The flush-on-exit hooks
in :mod:`repro.obs.export` must write the manifest and a complete
exposition snapshot before the process re-delivers the signal to
itself — so the files are valid JSON / exposition text, yet the exit
status still reports death by SIGTERM.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _spawn_train(tmp_path: Path) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "train",
            "--num-users", "150",
            "--num-items", "25",
            "--dim", "8",
            "--epochs", "500",  # far longer than the test will allow
            "--seed", "0",
            "--metrics-out", str(tmp_path / "manifest.json"),
            "--trace-out", str(tmp_path / "trace.jsonl"),
            "--telemetry-dir", str(tmp_path / "tele"),
            "--export-every", "0.2",
        ],
        cwd=tmp_path,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_until(condition, proc: subprocess.Popen, what: str, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return
        if proc.poll() is not None:
            pytest.fail(f"training exited early with {proc.returncode}")
        time.sleep(0.01)
    pytest.fail(f"{what} did not happen within the timeout")


def test_sigterm_mid_run_flushes_telemetry(tmp_path):
    victim = _spawn_train(tmp_path)
    exposition = tmp_path / "tele" / "metrics.prom"
    try:
        # The exporter writes an initial snapshot at start(), so this
        # appears well before training finishes its 500 epochs.
        _wait_until(exposition.exists, victim, "initial snapshot")
        # Kill only after the *second* flush (the atomic replace bumps
        # the mtime): by then the process is deep in the training loop,
        # past all the exit-hook registration.
        first_mtime = exposition.stat().st_mtime_ns
        _wait_until(
            lambda: exposition.stat().st_mtime_ns != first_mtime,
            victim,
            "second periodic flush",
        )
        os.kill(victim.pid, signal.SIGTERM)
        victim.wait(timeout=60)
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=30)

    # The exit status must still be honest about the termination.
    assert victim.returncode == -signal.SIGTERM

    # --metrics-out / --trace-out flushed by the signal handler.
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest["name"] == "train"
    assert (tmp_path / "trace.jsonl").exists()

    # The telemetry directory holds a complete, parseable snapshot set.
    exposition = (tmp_path / "tele" / "metrics.prom").read_text()
    assert exposition == "" or "# TYPE" in exposition
    json.loads((tmp_path / "tele" / "manifest.json").read_text())
    assert not any(
        p.name.startswith(".") for p in (tmp_path / "tele").iterdir()
    ), "no torn temp files may linger in the telemetry dir"
