"""Unit tests for span tracing (nesting, errors, export, flame text)."""

import json

import pytest

from repro.errors import EvaluationError
from repro.obs.tracing import NULL_TRACER, Tracer


class TestNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("fit"):
            with tracer.span("contexts"):
                pass
            with tracer.span("epoch", epoch=0):
                with tracer.span("sgd"):
                    pass
        (root,) = tracer.roots
        assert root.name == "fit"
        assert [c.name for c in root.children] == ["contexts", "epoch"]
        assert [c.name for c in root.children[1].children] == ["sgd"]
        assert root.children[1].attributes == {"epoch": 0}

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.roots] == ["a", "b"]

    def test_durations_nest_sensibly(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.find("outer"), tracer.find("inner")
        assert outer.finished and inner.finished
        assert 0.0 <= inner.duration <= outer.duration

    def test_yielded_span_takes_attributes(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set_attribute("num_contexts", 7)
        assert tracer.find("s").attributes["num_contexts"] == 7


class TestErrors:
    def test_exception_stamps_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("fit"):
                with tracer.span("epoch"):
                    raise ValueError("boom")
        fit, epoch = tracer.find("fit"), tracer.find("epoch")
        assert epoch.status == "error"
        assert epoch.error == "ValueError: boom"
        assert fit.status == "error"
        assert fit.finished and epoch.finished

    def test_stack_recovers_after_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError
        with tracer.span("good"):
            pass
        # "good" is a new root, not a child of the failed span.
        assert [s.name for s in tracer.roots] == ["bad", "good"]


class TestExport:
    def _sample_tracer(self):
        tracer = Tracer()
        with tracer.span("fit", engine="batched"):
            with tracer.span("epoch", epoch=0):
                pass
        return tracer

    def test_iter_spans_depth_first(self):
        tracer = self._sample_tracer()
        assert [s.name for s in tracer.iter_spans()] == ["fit", "epoch"]

    def test_to_dicts_round_trips_json(self):
        dicts = self._sample_tracer().to_dicts()
        payload = json.loads(json.dumps(dicts))
        assert payload[0]["name"] == "fit"
        assert payload[0]["children"][0]["attributes"] == {"epoch": 0}

    def test_write_jsonl(self, tmp_path):
        path = self._sample_tracer().write_jsonl(tmp_path / "trace.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [(r["name"], r["path"], r["depth"]) for r in rows] == [
            ("fit", "fit", 0),
            ("epoch", "fit/epoch", 1),
        ]
        assert all(r["status"] == "ok" for r in rows)

    def test_flame_text_mentions_every_span(self):
        text = self._sample_tracer().flame_text()
        assert "fit" in text and "epoch" in text

    def test_flame_text_empty_forest_raises(self):
        with pytest.raises(EvaluationError):
            Tracer().flame_text()

    def test_reset(self):
        tracer = self._sample_tracer()
        tracer.reset()
        assert tracer.roots == []


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", x=1) as span:
            span.set_attribute("y", 2)
        assert span.duration == 0.0
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.find("anything") is None
        assert NULL_TRACER.to_dicts() == []

    def test_null_span_is_shared(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
