"""Streaming quantile estimators: P² accuracy and reservoir exactness."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.obs import P2Quantile, ReservoirSampler
from repro.obs.quantiles import check_quantile


class TestCheckQuantile:
    def test_accepts_bounds(self):
        assert check_quantile(0) == 0.0
        assert check_quantile(1) == 1.0
        assert check_quantile(0.5) == 0.5

    @pytest.mark.parametrize("q", [-0.01, 1.01, 2, -5])
    def test_rejects_outside_unit_interval(self, q):
        with pytest.raises(TelemetryError, match="quantile"):
            check_quantile(q)


class TestP2Quantile:
    def test_empty_reads_none(self):
        assert P2Quantile(0.5).value() is None

    def test_exact_below_five_observations(self):
        est = P2Quantile(0.5)
        for value in (3.0, 1.0, 2.0):
            est.observe(value)
        assert est.count == 3
        assert est.value() == pytest.approx(2.0)

    def test_deterministic(self):
        rng = np.random.default_rng(7)
        data = rng.normal(size=500)
        first, second = P2Quantile(0.9), P2Quantile(0.9)
        for value in data:
            first.observe(value)
            second.observe(value)
        assert first.value() == second.value()

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95, 0.99])
    def test_tracks_lognormal_within_tolerance(self, q):
        rng = np.random.default_rng(13)
        data = rng.lognormal(mean=-7.0, sigma=0.8, size=5000)
        est = P2Quantile(q)
        for value in data:
            est.observe(value)
        exact = float(np.quantile(data, q))
        assert est.value() == pytest.approx(exact, rel=0.05)
        assert est.count == len(data)

    def test_invalid_quantile_rejected(self):
        with pytest.raises(TelemetryError):
            P2Quantile(1.5)


class TestReservoirSampler:
    def test_exact_while_under_capacity(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=100)
        sampler = ReservoirSampler(capacity=128, seed=0)
        sampler.observe_many(data)
        assert sampler.exact
        assert sampler.count == 100
        assert sampler.total == pytest.approx(float(data.sum()))
        assert sampler.minimum == pytest.approx(float(data.min()))
        assert sampler.maximum == pytest.approx(float(data.max()))
        for q in (0.0, 0.5, 0.99, 1.0):
            assert sampler.quantile(q) == pytest.approx(
                float(np.quantile(data, q))
            )

    def test_saturated_estimate_stays_close(self):
        rng = np.random.default_rng(11)
        data = rng.lognormal(mean=-7.0, sigma=0.8, size=20000)
        sampler = ReservoirSampler(capacity=2048, seed=5)
        sampler.observe_many(data)
        assert not sampler.exact
        assert len(sampler.samples()) == 2048
        # Moments stay exact regardless of sampling.
        assert sampler.count == len(data)
        assert sampler.total == pytest.approx(float(data.sum()))
        assert sampler.maximum == pytest.approx(float(data.max()))
        # Quantiles are estimates over a uniform sample of the stream.
        for q in (0.5, 0.99):
            assert sampler.quantile(q) == pytest.approx(
                float(np.quantile(data, q)), rel=0.10
            )

    def test_same_seed_same_reservoir(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=5000)
        a = ReservoirSampler(capacity=64, seed=9)
        b = ReservoirSampler(capacity=64, seed=9)
        a.observe_many(data)
        b.observe_many(data)
        np.testing.assert_array_equal(a.samples(), b.samples())

    def test_empty_reads_none(self):
        sampler = ReservoirSampler(capacity=8)
        assert sampler.quantile(0.5) is None
        assert sampler.minimum is None
        assert sampler.maximum is None
        assert sampler.quantiles([0.5, 0.9]) == [None, None]

    def test_capacity_must_be_positive(self):
        with pytest.raises(TelemetryError, match="capacity"):
            ReservoirSampler(capacity=0)
