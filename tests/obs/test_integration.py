"""Integration: an instrumented fit records real telemetry end to end."""

import pytest

from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.data.synthetic import SyntheticSocialDataset
from repro.obs import RunRecorder, recording


@pytest.fixture(scope="module")
def data():
    return SyntheticSocialDataset.digg_like(
        num_users=200, num_items=40, seed=5
    )


@pytest.fixture(scope="module")
def fitted(data):
    model = Inf2vecModel(
        Inf2vecConfig(dim=8, epochs=2, telemetry=True), seed=3
    )
    model.fit(data.graph, data.log)
    return model


class TestTelemetryFlag:
    def test_epoch_metrics_recorded(self, fitted):
        metrics = fitted.run_recorder.metrics
        assert metrics.counter("train.epochs").total() == 2.0
        loss = metrics.gauge("train.epoch.loss")
        losses = [loss.value(epoch=e) for e in range(2)]
        assert all(v is not None and v > 0 for v in losses)
        rate = metrics.gauge("train.epoch.examples_per_sec")
        assert rate.value(epoch=0) > 0

    def test_context_metrics_recorded(self, fitted, data):
        metrics = fitted.run_recorder.metrics
        walk_lengths = metrics.histogram(
            "contexts.walk_length",
            buckets=(0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0),
        )
        assert walk_lengths.count() > 0
        assert metrics.counter("contexts.episodes").total() > 0
        assert (
            metrics.counter("contexts.tuples").total()
            == walk_lengths.count()
        )

    def test_negative_sampling_metrics_recorded(self, fitted):
        names = fitted.run_recorder.metrics.names()
        assert "negatives.collisions" in names

    def test_span_tree_shape(self, fitted):
        tracer = fitted.run_recorder.tracer
        (fit,) = tracer.roots
        assert fit.name == "fit"
        child_names = [c.name for c in fit.children]
        # Contexts are generated once up front, then one span per epoch
        # wrapping the sgd pass.
        assert child_names == ["contexts", "epoch", "epoch"]
        for epoch_span in fit.children[1:]:
            assert [c.name for c in epoch_span.children] == ["sgd"]
            assert epoch_span.attributes["loss"] > 0

    def test_manifest_contains_config_and_dataset(self, fitted, data):
        manifest = fitted.run_recorder.manifest()
        assert manifest["config"]["values"]["dim"] == 8
        assert manifest["config"]["fingerprint"]
        assert manifest["dataset"]["num_users"] == data.graph.num_nodes
        assert manifest["annotations"]["seed"] == "3"


class TestAmbientScope:
    def test_recording_scope_captures_fit(self, data):
        run = RunRecorder(name="scope")
        model = Inf2vecModel(Inf2vecConfig(dim=8, epochs=1), seed=3)
        with recording(run):
            model.fit(data.graph, data.log)
        assert run.metrics.counter("train.epochs").total() == 1.0
        assert run.tracer.find("sgd") is not None
        # The ambient recorder wins: the model did not create its own.
        assert model.run_recorder is None

    def test_telemetry_off_records_nothing(self, data):
        model = Inf2vecModel(Inf2vecConfig(dim=8, epochs=1), seed=3)
        model.fit(data.graph, data.log)
        assert model.run_recorder is None


class TestDeterminism:
    def test_telemetry_does_not_change_training(self, data):
        plain = Inf2vecModel(Inf2vecConfig(dim=8, epochs=2), seed=3)
        plain.fit(data.graph, data.log)
        instrumented = Inf2vecModel(
            Inf2vecConfig(dim=8, epochs=2, telemetry=True), seed=3
        )
        instrumented.fit(data.graph, data.log)
        import numpy as np

        np.testing.assert_array_equal(
            plain.embedding.source, instrumented.embedding.source
        )
        assert plain.loss_history == instrumented.loss_history
