"""Unit tests for the time-aware context generator."""

import numpy as np
import pytest

from repro.core.context import ContextConfig
from repro.core.propagation import PropagationNetwork
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import TrainingError
from repro.extensions.temporal_context import (
    TemporalContextConfig,
    TemporalContextGenerator,
    temporal_global_sample,
    temporal_walk,
)
from repro.utils.rng import ensure_rng


@pytest.fixture
def episode() -> DiffusionEpisode:
    # 0 adopts, then 1 quickly, 2 slowly; both influenced by 0.
    return DiffusionEpisode(0, [(0, 0.0), (1, 1.0), (2, 50.0), (3, 51.0)])


@pytest.fixture
def network(episode) -> PropagationNetwork:
    graph = SocialGraph(4, [(0, 1), (0, 2), (2, 3)])
    return PropagationNetwork.from_episode(graph, episode)


class TestTemporalWalk:
    def test_prefers_fast_propagation(self, network, episode):
        rng = ensure_rng(0)
        visited = temporal_walk(
            network, episode, 0, budget=300, restart_prob=0.5, decay=5.0, rng=rng
        )
        # Successor 1 (delta 1.0) should dominate successor 2 (delta 50).
        assert visited.count(1) > 3 * visited.count(2)

    def test_budget_and_sink(self, network, episode):
        rng = ensure_rng(0)
        assert temporal_walk(network, episode, 3, 10, 0.5, 5.0, rng) == []
        walk = temporal_walk(network, episode, 0, 7, 0.5, 5.0, rng)
        assert len(walk) == 7

    def test_zero_budget(self, network, episode):
        rng = ensure_rng(0)
        assert temporal_walk(network, episode, 0, 0, 0.5, 5.0, rng) == []


class TestTemporalGlobalSample:
    def test_prefers_temporal_neighbours(self, network, episode):
        rng = ensure_rng(0)
        samples = temporal_global_sample(network, episode, 2, 300, decay=5.0, rng=rng)
        # User 2 adopted at t=50; user 3 (t=51) is far closer than 0/1.
        assert samples.count(3) > samples.count(0)
        assert samples.count(3) > samples.count(1)

    def test_excludes_self(self, network, episode):
        rng = ensure_rng(0)
        samples = temporal_global_sample(network, episode, 0, 50, 5.0, rng)
        assert 0 not in samples


class TestGenerator:
    def test_generates_trainable_corpus(self):
        graph = SocialGraph(4, [(0, 1), (0, 2), (2, 3)])
        episode = DiffusionEpisode(0, [(0, 0.0), (1, 1.0), (2, 2.0), (3, 3.0)])
        log = ActionLog([episode], num_users=4)
        generator = TemporalContextGenerator(
            graph,
            TemporalContextConfig(base=ContextConfig(length=8, alpha=0.5)),
            seed=0,
        )
        corpus = generator.generate(log)
        assert corpus
        assert all(len(c) > 0 for c in corpus)
        assert {c.item for c in corpus} == {0}

        # The corpus must feed the unchanged core trainer.
        from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel

        model = Inf2vecModel(Inf2vecConfig(dim=4, epochs=2), seed=0)
        model.fit_contexts(corpus, num_users=4)
        assert model.is_fitted

    def test_oversized_log_rejected(self):
        graph = SocialGraph(2, [(0, 1)])
        log = ActionLog([DiffusionEpisode(0, [(4, 1.0)])], num_users=5)
        generator = TemporalContextGenerator(graph, seed=0)
        with pytest.raises(TrainingError):
            generator.generate(log)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            TemporalContextConfig(decay=0.0)
