"""Unit tests for the topic-aware Inf2vec extension."""

import numpy as np
import pytest

from repro.core.context import ContextConfig
from repro.core.inf2vec import Inf2vecConfig
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import NotFittedError, TrainingError
from repro.extensions.topic_inf2vec import (
    TopicConfig,
    TopicInf2vec,
    adopter_profiles,
)


@pytest.fixture(scope="module")
def topical_world():
    """Two user communities, each adopting its own item family."""
    edges = []
    for u in range(10):
        for v in range(10):
            if u != v and (u + v) % 3 == 0:
                edges.append((u, v))
    for u in range(10, 20):
        for v in range(10, 20):
            if u != v and (u + v) % 3 == 0:
                edges.append((u, v))
    edges.append((0, 10))
    graph = SocialGraph(20, edges)

    rng = np.random.default_rng(0)
    episodes = []
    for item in range(30):
        community = range(10) if item % 2 == 0 else range(10, 20)
        adopters = [
            (int(u), float(t))
            for t, u in enumerate(rng.permutation(list(community))[:6])
        ]
        episodes.append(DiffusionEpisode(item, adopters))
    return graph, ActionLog(episodes, num_users=20)


class TestAdopterProfiles:
    def test_profiles_shape(self, topical_world):
        _graph, log = topical_world
        profiles, items, projection = adopter_profiles(log, dim=4)
        assert profiles.shape == (30, 4)
        assert len(items) == 30
        assert projection.shape == (20, 4)

    def test_same_community_items_cluster(self, topical_world):
        _graph, log = topical_world
        profiles, items, _ = adopter_profiles(log, dim=4)
        even = profiles[[i for i, item in enumerate(items) if item % 2 == 0]]
        odd = profiles[[i for i, item in enumerate(items) if item % 2 == 1]]
        within = np.linalg.norm(even - even.mean(axis=0), axis=1).mean()
        between = np.linalg.norm(even.mean(axis=0) - odd.mean(axis=0))
        assert between > within

    def test_empty_log_rejected(self):
        with pytest.raises(TrainingError):
            adopter_profiles(ActionLog([], num_users=5), dim=2)


class TestTopicInf2vec:
    @pytest.fixture(scope="class")
    def model(self, topical_world):
        graph, log = topical_world
        config = Inf2vecConfig(
            dim=8, epochs=5, learning_rate=0.05,
            context=ContextConfig(length=6, alpha=0.3),
        )
        return TopicInf2vec(
            config, TopicConfig(num_topics=2, min_episodes_per_topic=3), seed=0
        ).fit(graph, log)

    def test_topics_recover_item_families(self, model):
        even_topics = {model.topic_of(item) for item in range(0, 30, 2)}
        odd_topics = {model.topic_of(item) for item in range(1, 30, 2)}
        assert len(even_topics) == 1
        assert len(odd_topics) == 1
        assert even_topics != odd_topics

    def test_topic_models_trained(self, model):
        assert model.num_topic_models == 2

    def test_unseen_item_routed_by_adopters(self, model):
        # Adopters from the first community place the item in their topic.
        topic = model.topic_of(999, adopters=np.array([0, 1, 2]))
        assert topic == model.topic_of(0)

    def test_unseen_item_without_adopters(self, model):
        assert model.topic_of(999) is None
        # Falls back to the global model without raising.
        predictor = model.predictor_for_item(999)
        assert predictor.activation_score(1, [0]) is not None

    def test_evaluation_runs(self, model, topical_world):
        graph, log = topical_world
        result = model.evaluate_activation(graph, log)
        assert 0.0 <= result.auc <= 1.0

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            TopicInf2vec().predictor_for_item(0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TopicConfig(num_topics=0)
