"""Unit tests for the k-means substrate."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.extensions.clustering import kmeans
from repro.utils.rng import ensure_rng


class TestKMeans:
    @pytest.fixture(scope="class")
    def two_blobs(self) -> np.ndarray:
        rng = ensure_rng(0)
        a = rng.normal(loc=0.0, scale=0.2, size=(30, 3))
        b = rng.normal(loc=5.0, scale=0.2, size=(30, 3))
        return np.vstack([a, b])

    def test_separates_blobs(self, two_blobs):
        result = kmeans(two_blobs, 2, seed=0)
        first_half = set(result.labels[:30].tolist())
        second_half = set(result.labels[30:].tolist())
        assert len(first_half) == 1
        assert len(second_half) == 1
        assert first_half != second_half

    def test_inertia_decreases_with_more_clusters(self, two_blobs):
        one = kmeans(two_blobs, 1, seed=0)
        two = kmeans(two_blobs, 2, seed=0)
        assert two.inertia < one.inertia

    def test_labels_within_range(self, two_blobs):
        result = kmeans(two_blobs, 4, seed=0)
        assert result.labels.min() >= 0
        assert result.labels.max() < 4
        assert result.centroids.shape == (4, 3)

    def test_deterministic_under_seed(self, two_blobs):
        a = kmeans(two_blobs, 3, seed=7)
        b = kmeans(two_blobs, 3, seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_k_equals_n(self):
        points = np.arange(6, dtype=float).reshape(3, 2)
        result = kmeans(points, 3, seed=0)
        assert result.inertia == pytest.approx(0.0)
        assert len(set(result.labels.tolist())) == 3

    def test_duplicate_points_handled(self):
        points = np.zeros((10, 2))
        result = kmeans(points, 2, seed=0)
        assert result.inertia == pytest.approx(0.0)

    def test_invalid_inputs(self):
        with pytest.raises(TrainingError):
            kmeans(np.zeros((2, 2)), 3)
        with pytest.raises(TrainingError):
            kmeans(np.zeros(5), 2)
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 0)
