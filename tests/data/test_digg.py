"""Unit tests for the Digg 2009 CSV parsers."""

import pytest

from repro.data.digg import load_digg, load_digg_friends, load_digg_votes
from repro.errors import ActionLogError, GraphError

FRIENDS_CSV = (
    '"mutual","friend_date","user_id","friend_id"\n'
    '"0","1246393243","alice","bob"\n'
    '"1","1246393244","bob","carol"\n'
    '"0","1246393245","alice","alice"\n'  # self-tie tolerated
)

VOTES_CSV = (
    '"date","voter_id","story_id"\n'
    '"100","bob","story_a"\n'
    '"200","alice","story_a"\n'
    '"150","carol","story_b"\n'
    '"90","bob","story_a"\n'  # duplicate vote, earlier timestamp wins
    '"300","ghost","story_a"\n'  # voter not in the graph
)


@pytest.fixture
def files(tmp_path):
    friends = tmp_path / "digg_friends.csv"
    votes = tmp_path / "digg_votes.csv"
    friends.write_text(FRIENDS_CSV)
    votes.write_text(VOTES_CSV)
    return friends, votes


class TestFriends:
    def test_influence_direction(self, files):
        friends, _ = files
        graph, index = load_digg_friends(friends)
        # alice lists bob -> influence edge bob -> alice.
        assert graph.has_edge(index.id_of("bob"), index.id_of("alice"))
        assert not graph.has_edge(index.id_of("alice"), index.id_of("bob"))

    def test_mutual_creates_both_directions(self, files):
        friends, _ = files
        graph, index = load_digg_friends(friends)
        bob, carol = index.id_of("bob"), index.id_of("carol")
        assert graph.has_edge(carol, bob)
        assert graph.has_edge(bob, carol)

    def test_self_ties_skipped(self, files):
        friends, _ = files
        graph, _ = load_digg_friends(friends)
        assert graph.num_edges == 3

    def test_bad_mutual_flag(self, tmp_path):
        path = tmp_path / "f.csv"
        path.write_text('"yes","1","a","b"\n')
        with pytest.raises(GraphError, match="mutual"):
            load_digg_friends(path)

    def test_wrong_field_count(self, tmp_path):
        path = tmp_path / "f.csv"
        path.write_text('"0","1","a"\n')
        with pytest.raises(GraphError, match="expected 4"):
            load_digg_friends(path)


class TestVotes:
    def test_episodes_grouped_and_ordered(self, files):
        friends, votes = files
        graph, index = load_digg_friends(friends)
        log = load_digg_votes(votes, index, num_users=graph.num_nodes)
        assert len(log) == 2
        story_a = log[0]
        assert story_a.users.tolist() == [
            index.id_of("bob"), index.id_of("alice"),
        ]

    def test_duplicate_votes_keep_earliest(self, files):
        friends, votes = files
        graph, index = load_digg_friends(friends)
        log = load_digg_votes(votes, index, num_users=graph.num_nodes)
        assert log[0].time_of(index.id_of("bob")) == 90.0

    def test_unknown_voter_skipped(self, files):
        friends, votes = files
        graph, index = load_digg_friends(friends)
        log = load_digg_votes(votes, index, num_users=graph.num_nodes)
        assert "ghost" not in index
        assert log.num_actions == 3

    def test_unknown_voter_strict(self, files, tmp_path):
        friends, _ = files
        _, index = load_digg_friends(friends)
        votes = tmp_path / "v.csv"
        votes.write_text('"1","ghost","s"\n')
        with pytest.raises(ActionLogError, match="unknown voter"):
            load_digg_votes(votes, index, skip_unknown_users=False)

    def test_bad_timestamp(self, files, tmp_path):
        friends, _ = files
        _, index = load_digg_friends(friends)
        votes = tmp_path / "v.csv"
        votes.write_text('"noon","alice","s"\n')
        with pytest.raises(ActionLogError, match="bad timestamp"):
            load_digg_votes(votes, index)


class TestEndToEnd:
    def test_load_digg_runs_pipeline(self, files):
        friends, votes = files
        graph, log, index = load_digg(friends, votes)
        from repro.core.pairs import pair_frequencies

        freqs = pair_frequencies(graph, log)
        # bob voted before alice and alice watches bob: one pair.
        assert freqs.pair_counts[
            (index.id_of("bob"), index.id_of("alice"))
        ] == 1
