"""Unit tests for the synthetic citation corpus."""

import numpy as np
import pytest

from repro.data.citation import CitationConfig, CitationDataset
from repro.errors import DataGenerationError


@pytest.fixture(scope="module")
def dataset() -> CitationDataset:
    config = CitationConfig(num_authors=80, num_papers=100, mean_references=4.0)
    return CitationDataset.generate(config, seed=7)


class TestGeneration:
    def test_paper_count(self, dataset):
        assert len(dataset.papers) == 100

    def test_references_point_backwards(self, dataset):
        for paper in dataset.papers:
            assert all(ref < paper.paper_id for ref in paper.references)

    def test_first_paper_has_no_references(self, dataset):
        assert dataset.papers[0].references == ()

    def test_authors_valid_and_distinct(self, dataset):
        for paper in dataset.papers:
            assert len(set(paper.authors)) == len(paper.authors)
            assert all(0 <= a < 80 for a in paper.authors)

    def test_pairs_match_citations(self, dataset):
        """Every pair must come from an actual citation between papers."""
        by_time = {}
        for pair in dataset.pairs:
            by_time.setdefault(pair.time, []).append(pair)
        for time, pairs in by_time.items():
            paper = dataset.papers[time]
            cited_authors = {
                a for ref in paper.references for a in dataset.papers[ref].authors
            }
            for pair in pairs:
                assert pair.target in paper.authors
                assert pair.source in cited_authors

    def test_no_self_influence(self, dataset):
        assert all(p.source != p.target for p in dataset.pairs)

    def test_deterministic_under_seed(self):
        config = CitationConfig(num_authors=40, num_papers=30)
        a = CitationDataset.generate(config, seed=3)
        b = CitationDataset.generate(config, seed=3)
        assert [p.references for p in a.papers] == [p.references for p in b.papers]

    def test_sparse_pair_structure(self, dataset):
        """Most author pairs should be observed only a few times."""
        counts = np.array(list(dataset.pair_multiset().values()))
        assert np.median(counts) <= 3

    def test_productivity_heavy_tailed(self, dataset):
        papers = dataset.papers_per_author()
        assert papers.max() >= 3 * max(1, int(np.median(papers[papers > 0])))

    def test_invalid_config(self):
        with pytest.raises(DataGenerationError):
            CitationConfig(mean_references=0)
        with pytest.raises(ValueError):
            CitationConfig(num_authors=0)


class TestSplit:
    def test_partition(self, dataset):
        train, test = dataset.split(0.8, seed=0)
        assert len(train) + len(test) == dataset.num_pairs
        assert len(train) == int(dataset.num_pairs * 0.8)

    def test_deterministic(self, dataset):
        a_train, _ = dataset.split(0.8, seed=5)
        b_train, _ = dataset.split(0.8, seed=5)
        assert a_train == b_train

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            dataset.split(0.0)

    def test_statistics(self, dataset):
        stats = dataset.statistics()
        assert stats["num_papers"] == 100
        assert stats["num_pairs"] == dataset.num_pairs
        assert stats["num_distinct_pairs"] <= stats["num_pairs"]
