"""Unit tests for the on-disk format loaders."""

import pytest

from repro.data.loaders import (
    UserIndex,
    load_action_log,
    load_dataset,
    load_edge_list,
    write_action_log,
    write_edge_list,
)
from repro.errors import ActionLogError, GraphError


class TestUserIndex:
    def test_intern_is_idempotent(self):
        index = UserIndex()
        assert index.intern("alice") == 0
        assert index.intern("bob") == 1
        assert index.intern("alice") == 0
        assert len(index) == 2

    def test_lookup_roundtrip(self):
        index = UserIndex()
        index.intern("alice")
        assert index.id_of("alice") == 0
        assert index.name_of(0) == "alice"
        assert "alice" in index

    def test_unknown_lookups_raise(self):
        index = UserIndex()
        with pytest.raises(GraphError):
            index.id_of("ghost")
        with pytest.raises(GraphError):
            index.name_of(3)


class TestEdgeList:
    def test_parse_whitespace_and_comments(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# a comment\nalice bob\n\nbob carol\n")
        graph, index = load_edge_list(path)
        assert graph.num_nodes == 3
        assert graph.has_edge(index.id_of("alice"), index.id_of("bob"))

    def test_parse_comma_separated(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("alice,bob\n")
        graph, _ = load_edge_list(path)
        assert graph.num_edges == 1

    def test_self_loops_tolerated(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice alice\nalice bob\n")
        graph, _ = load_edge_list(path)
        assert graph.num_edges == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice bob carol\n")
        with pytest.raises(GraphError, match="expected 2 fields"):
            load_edge_list(path)

    def test_num_users_override(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice bob\n")
        graph, _ = load_edge_list(path, num_users=10)
        assert graph.num_nodes == 10

    def test_num_users_too_small_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice bob\ncarol dave\n")
        with pytest.raises(GraphError, match="references"):
            load_edge_list(path, num_users=2)

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice bob\nbob carol\n")
        graph, index = load_edge_list(path)
        out = tmp_path / "out.txt"
        write_edge_list(graph, out, index)
        graph2, index2 = load_edge_list(out)
        assert graph2.num_edges == graph.num_edges


class TestActionLog:
    @pytest.fixture
    def index(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice bob\nbob carol\n")
        _, index = load_edge_list(path)
        return index

    def test_parse_votes(self, tmp_path, index):
        path = tmp_path / "votes.txt"
        path.write_text("alice story1 100\nbob story1 200\ncarol story2 50\n")
        log = load_action_log(path, index)
        assert len(log) == 2
        assert log.num_actions == 3

    def test_unknown_user_skipped_by_default(self, tmp_path, index):
        path = tmp_path / "votes.txt"
        path.write_text("ghost story1 100\nalice story1 200\n")
        log = load_action_log(path, index)
        assert log.num_actions == 1

    def test_unknown_user_strict_mode(self, tmp_path, index):
        path = tmp_path / "votes.txt"
        path.write_text("ghost story1 100\n")
        with pytest.raises(ActionLogError, match="unknown user"):
            load_action_log(path, index, skip_unknown_users=False)

    def test_duplicate_votes_keep_earliest(self, tmp_path, index):
        path = tmp_path / "votes.txt"
        path.write_text("alice story1 300\nalice story1 100\n")
        log = load_action_log(path, index)
        episode = log.episodes[0]
        assert len(episode) == 1
        assert episode.times[0] == 100.0

    def test_bad_timestamp_rejected(self, tmp_path, index):
        path = tmp_path / "votes.txt"
        path.write_text("alice story1 noon\n")
        with pytest.raises(ActionLogError, match="bad timestamp"):
            load_action_log(path, index)

    def test_malformed_line_rejected(self, tmp_path, index):
        path = tmp_path / "votes.txt"
        path.write_text("alice story1\n")
        with pytest.raises(ActionLogError, match="expected 3 fields"):
            load_action_log(path, index)

    def test_roundtrip(self, tmp_path, index):
        path = tmp_path / "votes.txt"
        path.write_text("alice story1 100\nbob story1 200\n")
        log = load_action_log(path, index)
        out = tmp_path / "out.txt"
        write_action_log(log, out, index)
        log2 = load_action_log(out, index)
        assert log2.num_actions == log.num_actions


class TestLoadDataset:
    def test_end_to_end(self, tmp_path):
        (tmp_path / "edges.txt").write_text("alice bob\nbob carol\n")
        (tmp_path / "votes.txt").write_text(
            "alice item1 1\nbob item1 2\ncarol item1 3\n"
        )
        graph, log, index = load_dataset(
            tmp_path / "edges.txt", tmp_path / "votes.txt"
        )
        assert graph.num_nodes == 3
        assert log.num_users == 3
        assert log.num_actions == 3
