"""Unit tests for diffusion episodes and action logs."""

import numpy as np
import pytest

from repro.data.actionlog import ActionLog, Adoption, DiffusionEpisode
from repro.errors import ActionLogError


class TestDiffusionEpisode:
    def test_chronological_sorting(self):
        ep = DiffusionEpisode(7, [(3, 2.0), (1, 1.0), (2, 5.0)])
        assert ep.users.tolist() == [1, 3, 2]
        assert ep.times.tolist() == [1.0, 2.0, 5.0]

    def test_stable_tie_order(self):
        ep = DiffusionEpisode(0, [(5, 1.0), (2, 1.0), (9, 0.5)])
        assert ep.users.tolist() == [9, 5, 2]

    def test_positions_and_times(self):
        ep = DiffusionEpisode(1, [(4, 10.0), (2, 20.0)])
        assert ep.position(4) == 0
        assert ep.position(2) == 1
        assert ep.time_of(2) == 20.0

    def test_membership(self):
        ep = DiffusionEpisode(1, [(4, 10.0)])
        assert 4 in ep
        assert 5 not in ep

    def test_unknown_user_position_raises(self):
        ep = DiffusionEpisode(1, [(4, 10.0)])
        with pytest.raises(ActionLogError, match="did not adopt"):
            ep.position(9)

    def test_duplicate_user_rejected(self):
        with pytest.raises(ActionLogError, match="more than once"):
            DiffusionEpisode(1, [(4, 1.0), (4, 2.0)])

    def test_negative_user_rejected(self):
        with pytest.raises(ActionLogError, match=">= 0"):
            DiffusionEpisode(1, [(-1, 1.0)])

    def test_non_finite_time_rejected(self):
        with pytest.raises(ActionLogError, match="finite"):
            DiffusionEpisode(1, [(0, float("nan"))])

    def test_empty_episode_allowed(self):
        ep = DiffusionEpisode(1, [])
        assert len(ep) == 0
        assert ep.user_set() == frozenset()

    def test_iteration_yields_adoptions(self):
        ep = DiffusionEpisode(1, [(4, 1.0), (5, 2.0)])
        records = list(ep)
        assert records == [Adoption(4, 1.0), Adoption(5, 2.0)]

    def test_prefix(self):
        ep = DiffusionEpisode(1, [(4, 1.0), (5, 2.0), (6, 3.0)])
        assert ep.prefix(2).tolist() == [4, 5]
        assert ep.prefix(0).tolist() == []
        assert ep.prefix(10).tolist() == [4, 5, 6]

    def test_prefix_negative_rejected(self):
        ep = DiffusionEpisode(1, [(4, 1.0)])
        with pytest.raises(ActionLogError):
            ep.prefix(-1)

    def test_equality(self):
        a = DiffusionEpisode(1, [(4, 1.0), (5, 2.0)])
        b = DiffusionEpisode(1, [(5, 2.0), (4, 1.0)])
        assert a == b


class TestActionLog:
    def test_from_tuples_groups_by_item(self):
        log = ActionLog.from_tuples(
            [(0, 10, 1.0), (1, 10, 2.0), (2, 11, 1.0)], num_users=3
        )
        assert len(log) == 2
        assert log[10].users.tolist() == [0, 1]
        assert log[11].users.tolist() == [2]

    def test_duplicate_items_rejected(self):
        eps = [DiffusionEpisode(1, [(0, 1.0)]), DiffusionEpisode(1, [(1, 1.0)])]
        with pytest.raises(ActionLogError, match="distinct"):
            ActionLog(eps, num_users=2)

    def test_user_out_of_universe_rejected(self):
        with pytest.raises(ActionLogError, match="num_users"):
            ActionLog([DiffusionEpisode(0, [(5, 1.0)])], num_users=3)

    def test_missing_item_lookup_raises(self):
        log = ActionLog([], num_users=3)
        with pytest.raises(ActionLogError, match="no episode"):
            log[42]

    def test_num_actions(self, tiny_log):
        assert tiny_log.num_actions == 8

    def test_to_tuples_roundtrip(self):
        records = [(0, 10, 1.0), (1, 10, 2.0), (2, 11, 1.0)]
        log = ActionLog.from_tuples(records, num_users=3)
        assert sorted(log.to_tuples()) == sorted(records)

    def test_active_users(self, tiny_log):
        assert tiny_log.active_users().tolist() == [0, 1, 2, 3, 4]

    def test_user_action_counts(self, tiny_log):
        counts = tiny_log.user_action_counts()
        assert counts.tolist() == [2, 2, 2, 1, 1]
        assert counts.sum() == tiny_log.num_actions

    def test_restrict_items(self, tiny_log):
        restricted = tiny_log.restrict_items([1])
        assert len(restricted) == 1
        assert restricted[1].item == 1

    def test_statistics(self, tiny_log):
        stats = tiny_log.statistics()
        assert stats == {"num_users": 5, "num_items": 2, "num_actions": 8}


class TestSplit:
    @pytest.fixture
    def log(self) -> ActionLog:
        episodes = [
            DiffusionEpisode(i, [(i % 5, 1.0), ((i + 1) % 5, 2.0)])
            for i in range(20)
        ]
        return ActionLog(episodes, num_users=5)

    def test_split_partitions_episodes(self, log):
        train, tune, test = log.split((0.8, 0.1, 0.1), seed=0)
        assert len(train) + len(tune) + len(test) == len(log)
        all_items = sorted(train.items() + tune.items() + test.items())
        assert all_items == sorted(log.items())

    def test_split_fractions_respected(self, log):
        train, tune, test = log.split((0.8, 0.1, 0.1), seed=0)
        assert len(train) == 16
        assert len(tune) == 2
        assert len(test) == 2

    def test_split_deterministic_under_seed(self, log):
        a = log.split((0.5, 0.5), seed=42)
        b = log.split((0.5, 0.5), seed=42)
        assert a[0].items() == b[0].items()

    def test_split_varies_with_seed(self, log):
        a = log.split((0.5, 0.5), seed=1)
        b = log.split((0.5, 0.5), seed=2)
        assert a[0].items() != b[0].items()

    def test_bad_fractions_rejected(self, log):
        with pytest.raises(ActionLogError):
            log.split((0.5, 0.4))
        with pytest.raises(ActionLogError):
            log.split((1.2, -0.2))
        with pytest.raises(ActionLogError):
            log.split(())

    def test_single_fraction(self, log):
        (everything,) = log.split((1.0,), seed=0)
        assert len(everything) == len(log)
