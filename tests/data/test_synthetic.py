"""Unit tests for the synthetic dataset generator."""

import numpy as np
import pytest

from repro.data.synthetic import (
    CascadeConfig,
    GraphConfig,
    SyntheticSocialDataset,
    generate_power_law_graph,
    plant_influence,
    simulate_episode,
)
from repro.errors import DataGenerationError
from repro.eval.stats import spontaneous_share
from repro.utils.rng import ensure_rng


class TestGraphGeneration:
    def test_shape_and_connectivity(self):
        config = GraphConfig(num_users=100, out_edges_per_node=3, in_edges_per_node=3)
        graph = generate_power_law_graph(config, seed=0)
        assert graph.num_nodes == 100
        assert graph.num_edges > 100  # well above a tree
        # No isolated late nodes: every non-core node attaches.
        degrees = graph.out_degrees() + graph.in_degrees()
        assert np.all(degrees[GraphConfig().seed_core :] > 0)

    def test_heavy_tail(self):
        config = GraphConfig(num_users=500)
        graph = generate_power_law_graph(config, seed=0)
        in_degrees = graph.in_degrees()
        # Preferential attachment: max degree far above the median.
        assert in_degrees.max() > 4 * np.median(in_degrees)

    def test_deterministic_under_seed(self):
        config = GraphConfig(num_users=80)
        a = generate_power_law_graph(config, seed=5)
        b = generate_power_law_graph(config, seed=5)
        assert a == b

    def test_homophily_groups_similar_users(self):
        rng = ensure_rng(0)
        # Two orthogonal interest clusters.
        interests = np.zeros((100, 2))
        interests[:50, 0] = 1.0
        interests[50:, 1] = 1.0
        interests += 0.01 * rng.normal(size=interests.shape)
        config = GraphConfig(
            num_users=100, out_edges_per_node=3, in_edges_per_node=3,
            homophily=4.0, reciprocity=0.0,
        )
        graph = generate_power_law_graph(config, seed=0, interests=interests)
        same = sum(
            1 for u, v in graph.edges() if (u < 50) == (v < 50)
        )
        assert same / graph.num_edges > 0.7

    def test_interest_shape_checked(self):
        config = GraphConfig(num_users=10)
        with pytest.raises(DataGenerationError, match="rows"):
            generate_power_law_graph(config, seed=0, interests=np.zeros((5, 2)))

    def test_invalid_config(self):
        with pytest.raises(DataGenerationError):
            GraphConfig(num_users=4, seed_core=8)
        with pytest.raises(DataGenerationError):
            GraphConfig(homophily=-1.0)
        with pytest.raises(ValueError):
            GraphConfig(reciprocity=1.5)


class TestPlantedInfluence:
    def test_probabilities_follow_node_factors(self):
        graph = generate_power_law_graph(GraphConfig(num_users=60), seed=1)
        config = CascadeConfig(num_items=5, base_probability=0.01)
        planted = plant_influence(graph, config, ensure_rng(1))
        edges = graph.edge_array()
        expected = np.clip(
            0.01
            * planted.influence_ability[edges[:, 0]]
            * planted.conformity[edges[:, 1]],
            0,
            config.probability_cap,
        )
        np.testing.assert_allclose(planted.edge_probabilities.values, expected)

    def test_factors_mean_one(self):
        graph = generate_power_law_graph(GraphConfig(num_users=200), seed=1)
        planted = plant_influence(graph, CascadeConfig(num_items=5), ensure_rng(1))
        assert planted.influence_ability.mean() == pytest.approx(1.0)
        assert planted.conformity.mean() == pytest.approx(1.0)

    def test_shared_interests_used(self):
        graph = generate_power_law_graph(GraphConfig(num_users=30), seed=1)
        interests = np.ones((30, CascadeConfig().interest_dim))
        planted = plant_influence(
            graph, CascadeConfig(num_items=5), ensure_rng(1), interests=interests
        )
        assert planted.user_interests is interests


class TestEpisodeSimulation:
    def test_episode_is_chronological_and_unique(self):
        graph = generate_power_law_graph(GraphConfig(num_users=100), seed=2)
        config = CascadeConfig(num_items=3)
        planted = plant_influence(graph, config, ensure_rng(2))
        episode = simulate_episode(planted, 0, config, ensure_rng(3))
        assert len(set(episode.users.tolist())) == len(episode)
        assert np.all(np.diff(episode.times) >= 0)

    def test_max_episode_size(self):
        graph = generate_power_law_graph(GraphConfig(num_users=100), seed=2)
        config = CascadeConfig(num_items=3, max_episode_size=5, mean_spontaneous=20)
        planted = plant_influence(graph, config, ensure_rng(2))
        episode = simulate_episode(planted, 0, config, ensure_rng(3))
        assert len(episode) <= 5


class TestLTCascades:
    def test_lt_episode_valid(self):
        from repro.data.synthetic import simulate_episode_lt

        graph = generate_power_law_graph(GraphConfig(num_users=100), seed=2)
        config = CascadeConfig(num_items=3, spread_model="lt")
        planted = plant_influence(graph, config, ensure_rng(2))
        episode = simulate_episode_lt(planted, 0, config, ensure_rng(3))
        assert len(set(episode.users.tolist())) == len(episode)
        assert np.all(np.diff(episode.times) >= 0)

    def test_lt_dataset_generation(self):
        data = SyntheticSocialDataset.digg_like(
            num_users=100, num_items=10, seed=4, spread_model="lt"
        )
        assert data.log.num_actions > 0

    def test_lt_respects_cap(self):
        from repro.data.synthetic import simulate_episode_lt

        graph = generate_power_law_graph(GraphConfig(num_users=100), seed=2)
        config = CascadeConfig(
            num_items=3, spread_model="lt", max_episode_size=5,
            mean_spontaneous=20, lt_saturation=0.9,
        )
        planted = plant_influence(graph, config, ensure_rng(2))
        episode = simulate_episode_lt(planted, 0, config, ensure_rng(3))
        assert len(episode) <= 5

    def test_invalid_spread_model(self):
        with pytest.raises(DataGenerationError, match="spread_model"):
            CascadeConfig(spread_model="sir")


class TestPresets:
    def test_digg_preset_statistics(self, small_dataset):
        stats = small_dataset.statistics()
        assert stats["num_users"] == 150
        assert stats["num_items"] <= 60
        assert stats["num_actions"] > stats["num_items"]

    def test_flickr_denser_than_digg(self):
        digg = SyntheticSocialDataset.digg_like(num_users=200, num_items=10, seed=4)
        flickr = SyntheticSocialDataset.flickr_like(
            num_users=200, num_items=10, seed=4
        )
        assert flickr.graph.num_edges > digg.graph.num_edges

    def test_spontaneous_share_contrast(self):
        """Digg-like must be markedly more spontaneous than Flickr-like."""
        digg = SyntheticSocialDataset.digg_like(num_users=400, num_items=60, seed=5)
        flickr = SyntheticSocialDataset.flickr_like(
            num_users=400, num_items=60, seed=5
        )
        digg_share = spontaneous_share(digg.graph, digg.log)
        flickr_share = spontaneous_share(flickr.graph, flickr.log)
        assert digg_share > flickr_share + 0.1

    def test_cascade_overrides_forwarded(self):
        data = SyntheticSocialDataset.digg_like(
            num_users=100, num_items=5, seed=0, max_episode_size=4
        )
        assert all(len(ep) <= 4 for ep in data.log)

    def test_repr(self, small_dataset):
        assert "digg-like" in repr(small_dataset)
