"""Unit tests for whole-dataset persistence."""

import numpy as np
import pytest

from repro.data.serialization import load_dataset, save_dataset
from repro.data.synthetic import SyntheticSocialDataset
from repro.errors import DataGenerationError


@pytest.fixture(scope="module")
def dataset() -> SyntheticSocialDataset:
    return SyntheticSocialDataset.digg_like(num_users=80, num_items=15, seed=3)


class TestRoundtrip:
    def test_graph_preserved(self, dataset, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.graph == dataset.graph

    def test_log_preserved(self, dataset, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert sorted(loaded.log.to_tuples()) == sorted(dataset.log.to_tuples())

    def test_planted_truth_preserved(self, dataset, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        np.testing.assert_array_equal(
            loaded.planted.influence_ability, dataset.planted.influence_ability
        )
        np.testing.assert_array_equal(
            loaded.planted.edge_probabilities.values,
            dataset.planted.edge_probabilities.values,
        )
        np.testing.assert_array_equal(
            loaded.planted.user_interests, dataset.planted.user_interests
        )

    def test_name_preserved(self, dataset, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        assert load_dataset(path).name == "digg-like"

    def test_loaded_dataset_runs_pipeline(self, dataset, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        from repro.eval.stats import spontaneous_share

        assert spontaneous_share(loaded.graph, loaded.log) == pytest.approx(
            spontaneous_share(dataset.graph, dataset.log)
        )

    def test_version_check(self, dataset, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        # Corrupt the version tag.
        with np.load(path) as data:
            payload = {key: data[key] for key in data.files}
        payload["format_version"] = np.int64(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(DataGenerationError, match="version"):
            load_dataset(path)
