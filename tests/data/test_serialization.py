"""Unit tests for whole-dataset persistence."""

import numpy as np
import pytest

from repro.data.serialization import load_dataset, save_dataset
from repro.data.synthetic import SyntheticSocialDataset
from repro.errors import DataGenerationError


@pytest.fixture(scope="module")
def dataset() -> SyntheticSocialDataset:
    return SyntheticSocialDataset.digg_like(num_users=80, num_items=15, seed=3)


class TestRoundtrip:
    def test_graph_preserved(self, dataset, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.graph == dataset.graph

    def test_log_preserved(self, dataset, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert sorted(loaded.log.to_tuples()) == sorted(dataset.log.to_tuples())

    def test_planted_truth_preserved(self, dataset, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        np.testing.assert_array_equal(
            loaded.planted.influence_ability, dataset.planted.influence_ability
        )
        np.testing.assert_array_equal(
            loaded.planted.edge_probabilities.values,
            dataset.planted.edge_probabilities.values,
        )
        np.testing.assert_array_equal(
            loaded.planted.user_interests, dataset.planted.user_interests
        )

    def test_name_preserved(self, dataset, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        assert load_dataset(path).name == "digg-like"

    def test_loaded_dataset_runs_pipeline(self, dataset, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        from repro.eval.stats import spontaneous_share

        assert spontaneous_share(loaded.graph, loaded.log) == pytest.approx(
            spontaneous_share(dataset.graph, dataset.log)
        )

    def test_version_check(self, dataset, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        # Corrupt the version tag.
        with np.load(path) as data:
            payload = {key: data[key] for key in data.files}
        payload["format_version"] = np.int64(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(DataGenerationError, match="version"):
            load_dataset(path)

    def test_bare_path_roundtrip(self, dataset, tmp_path):
        """Both sides append .npz, so a bare path round-trips."""
        returned = save_dataset(dataset, tmp_path / "data")
        assert returned == tmp_path / "data.npz"
        assert load_dataset(tmp_path / "data").graph == dataset.graph


def _rewrite(path, **overrides):
    """Rewrite an archive with some fields replaced or dropped."""
    with np.load(path) as data:
        payload = {key: data[key] for key in data.files}
    for key, value in overrides.items():
        if value is None:
            payload.pop(key, None)
        else:
            payload[key] = value
    np.savez_compressed(path, **payload)


class TestValidation:
    @pytest.fixture()
    def saved(self, dataset, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        return path

    def test_truncated_archive_rejected(self, saved):
        payload = saved.read_bytes()
        saved.write_bytes(payload[: len(payload) // 3])
        with pytest.raises(DataGenerationError, match="cannot read"):
            load_dataset(saved)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "absent.npz")

    def test_missing_fields_rejected(self, saved):
        _rewrite(saved, log_times=None)
        with pytest.raises(DataGenerationError, match="missing fields"):
            load_dataset(saved)

    def test_edge_endpoints_out_of_range_rejected(self, saved):
        _rewrite(saved, edges=np.array([[0, 10_000]], dtype=np.int64),
                 edge_probabilities=np.array([0.5]))
        with pytest.raises(DataGenerationError, match="endpoints outside"):
            load_dataset(saved)

    def test_negative_edge_endpoint_rejected(self, saved):
        _rewrite(saved, edges=np.array([[-1, 0]], dtype=np.int64),
                 edge_probabilities=np.array([0.5]))
        with pytest.raises(DataGenerationError, match="endpoints outside"):
            load_dataset(saved)

    def test_malformed_edge_shape_rejected(self, saved):
        _rewrite(saved, edges=np.zeros((4, 3), dtype=np.int64))
        with pytest.raises(DataGenerationError, match="malformed edge array"):
            load_dataset(saved)

    def test_misaligned_log_arrays_rejected(self, saved):
        with np.load(saved) as data:
            users = data["log_users"]
        _rewrite(saved, log_users=users[:-1])
        with pytest.raises(DataGenerationError, match="misaligned log"):
            load_dataset(saved)

    def test_log_user_out_of_range_rejected(self, saved):
        with np.load(saved) as data:
            users = data["log_users"].copy()
        users[0] = 10_000
        _rewrite(saved, log_users=users)
        with pytest.raises(DataGenerationError, match="log users outside"):
            load_dataset(saved)

    def test_edge_probability_shape_rejected(self, saved):
        _rewrite(saved, edge_probabilities=np.array([0.5, 0.5]))
        with pytest.raises(DataGenerationError, match="edge probabilities"):
            load_dataset(saved)


class TestAtomicity:
    def test_failed_save_preserves_previous_archive(
        self, dataset, tmp_path, monkeypatch
    ):
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        before = path.read_bytes()
        monkeypatch.setattr(
            np,
            "savez_compressed",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(OSError):
            save_dataset(dataset, path)
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["data.npz"]
