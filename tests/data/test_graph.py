"""Unit tests for the directed social graph."""

import numpy as np
import pytest

from repro.data.graph import SocialGraph
from repro.errors import GraphError


class TestConstruction:
    def test_basic_counts(self):
        g = SocialGraph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        assert g.num_nodes == 4
        assert g.num_edges == 4

    def test_empty_graph(self):
        g = SocialGraph(3, [])
        assert g.num_edges == 0
        assert list(g.edges()) == []
        assert g.out_degree(0) == 0
        assert g.in_degree(2) == 0

    def test_zero_node_graph(self):
        g = SocialGraph(0, [])
        assert g.num_nodes == 0
        assert list(g.nodes()) == []

    def test_duplicate_edges_collapse(self):
        g = SocialGraph(3, [(0, 1), (0, 1), (1, 2)])
        assert g.num_edges == 2

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            SocialGraph(3, [(1, 1)])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphError, match="must lie in"):
            SocialGraph(3, [(0, 3)])
        with pytest.raises(GraphError, match="must lie in"):
            SocialGraph(3, [(-1, 0)])

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(GraphError):
            SocialGraph(-1, [])

    def test_malformed_edges_rejected(self):
        with pytest.raises(GraphError):
            SocialGraph(3, [(0, 1, 2)])  # type: ignore[list-item]

    def test_from_numpy_array(self):
        edges = np.array([[0, 1], [1, 2]], dtype=np.int64)
        g = SocialGraph.from_edge_array(3, edges)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)


class TestQueries:
    @pytest.fixture
    def graph(self) -> SocialGraph:
        return SocialGraph(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)])

    def test_out_neighbors(self, graph):
        assert sorted(graph.out_neighbors(0).tolist()) == [1, 2]
        assert graph.out_neighbors(4).tolist() == []

    def test_in_neighbors(self, graph):
        assert sorted(graph.in_neighbors(2).tolist()) == [0, 1]
        assert graph.in_neighbors(4).tolist() == []

    def test_degrees(self, graph):
        assert graph.out_degree(0) == 2
        assert graph.in_degree(2) == 2
        assert graph.out_degrees().tolist() == [2, 1, 1, 1, 0]
        assert graph.in_degrees().tolist() == [1, 1, 2, 1, 0]

    def test_has_edge_directedness(self, graph):
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_node_range_checked(self, graph):
        with pytest.raises(GraphError):
            graph.out_neighbors(5)
        with pytest.raises(GraphError):
            graph.has_edge(0, 99)

    def test_edges_iteration_matches_edge_array(self, graph):
        from_iter = list(graph.edges())
        from_array = [tuple(e) for e in graph.edge_array()]
        assert from_iter == from_array

    def test_edge_count_consistency(self, graph):
        assert graph.out_degrees().sum() == graph.num_edges
        assert graph.in_degrees().sum() == graph.num_edges


class TestDerivedGraphs:
    def test_reverse_flips_edges(self):
        g = SocialGraph(3, [(0, 1), (1, 2)])
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 1)
        assert not r.has_edge(0, 1)
        assert r.num_edges == g.num_edges

    def test_double_reverse_is_identity(self):
        g = SocialGraph(4, [(0, 1), (0, 2), (1, 3), (3, 2)])
        assert g.reverse().reverse() == g

    def test_subgraph_edges(self):
        g = SocialGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub = g.subgraph_edges([0, 1, 2])
        assert [tuple(e) for e in sub] == [(0, 1), (1, 2)]

    def test_subgraph_empty_when_no_internal_edges(self):
        g = SocialGraph(4, [(0, 1), (2, 3)])
        assert g.subgraph_edges([0, 2]).shape == (0, 2)


class TestEquality:
    def test_equal_graphs(self):
        a = SocialGraph(3, [(0, 1), (1, 2)])
        b = SocialGraph(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self):
        a = SocialGraph(3, [(0, 1)])
        b = SocialGraph(3, [(1, 0)])
        assert a != b

    def test_repr(self):
        g = SocialGraph(3, [(0, 1)])
        assert "num_nodes=3" in repr(g)
        assert "num_edges=1" in repr(g)
