"""Unit tests for the Linear Threshold simulator."""

import numpy as np
import pytest

from repro.data.graph import SocialGraph
from repro.diffusion.lt import simulate_lt, uniform_lt_weights
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import GraphError


class TestWeights:
    def test_uniform_weights_sum_to_one(self):
        graph = SocialGraph(4, [(0, 2), (1, 2), (2, 3)])
        weights = uniform_lt_weights(graph)
        assert weights.get(0, 2) == pytest.approx(0.5)
        assert weights.get(1, 2) == pytest.approx(0.5)
        assert weights.get(2, 3) == pytest.approx(1.0)

    def test_overweight_rejected(self):
        graph = SocialGraph(3, [(0, 2), (1, 2)])
        weights = EdgeProbabilities.constant(graph, 0.8)  # sums to 1.6 into 2
        with pytest.raises(GraphError, match="sum to"):
            simulate_lt(weights, [0], seed=0)


class TestSimulation:
    def test_threshold_crossing_activates(self):
        graph = SocialGraph(3, [(0, 2), (1, 2)])
        weights = EdgeProbabilities.constant(graph, 0.5)
        thresholds = np.array([0.9, 0.9, 0.75])
        # One active in-neighbour gives pressure 0.5 < 0.75: inactive.
        result = simulate_lt(weights, [0], thresholds=thresholds)
        assert result.activated.tolist() == [0]
        # Two active in-neighbours give pressure 1.0 >= 0.75: active.
        result = simulate_lt(weights, [0, 1], thresholds=thresholds)
        assert sorted(result.activated.tolist()) == [0, 1, 2]

    def test_cascade_depth(self):
        graph = SocialGraph(3, [(0, 1), (1, 2)])
        weights = uniform_lt_weights(graph)
        thresholds = np.array([0.5, 0.5, 0.5])
        result = simulate_lt(weights, [0], thresholds=thresholds)
        assert result.activated.tolist() == [0, 1, 2]
        assert result.activation_round.tolist() == [0, 1, 2]

    def test_max_rounds(self):
        graph = SocialGraph(3, [(0, 1), (1, 2)])
        weights = uniform_lt_weights(graph)
        thresholds = np.array([0.5, 0.5, 0.5])
        result = simulate_lt(weights, [0], thresholds=thresholds, max_rounds=1)
        assert result.activated.tolist() == [0, 1]

    def test_bad_threshold_shape(self):
        graph = SocialGraph(3, [(0, 1)])
        weights = uniform_lt_weights(graph)
        with pytest.raises(GraphError, match="thresholds"):
            simulate_lt(weights, [0], thresholds=np.array([0.5]))

    def test_seed_out_of_range(self):
        graph = SocialGraph(3, [(0, 1)])
        weights = uniform_lt_weights(graph)
        with pytest.raises(GraphError):
            simulate_lt(weights, [7], seed=0)

    def test_random_thresholds_deterministic_seed(self):
        graph = SocialGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        weights = uniform_lt_weights(graph)
        a = simulate_lt(weights, [0], seed=3)
        b = simulate_lt(weights, [0], seed=3)
        assert a.activated.tolist() == b.activated.tolist()

    def test_activated_set(self):
        graph = SocialGraph(2, [(0, 1)])
        weights = uniform_lt_weights(graph)
        result = simulate_lt(weights, [0], thresholds=np.array([1.0, 0.5]))
        assert result.activated_set() == frozenset({0, 1})
        assert result.size == 2
