"""Unit tests for the edge-probability table."""

import numpy as np
import pytest

from repro.data.graph import SocialGraph
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import GraphError


@pytest.fixture
def graph() -> SocialGraph:
    return SocialGraph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])


class TestConstruction:
    def test_constant(self, graph):
        probs = EdgeProbabilities.constant(graph, 0.3)
        assert probs.get(0, 1) == 0.3
        assert probs.values.shape == (4,)

    def test_from_function(self, graph):
        probs = EdgeProbabilities.from_function(
            graph, lambda u, v: (u + v) / 10.0
        )
        assert probs.get(2, 3) == pytest.approx(0.5)

    def test_from_dict_with_default(self, graph):
        probs = EdgeProbabilities.from_dict(graph, {(0, 1): 0.9}, default=0.1)
        assert probs.get(0, 1) == 0.9
        assert probs.get(1, 2) == 0.1

    def test_wrong_length_rejected(self, graph):
        with pytest.raises(GraphError, match="expected 4"):
            EdgeProbabilities(graph, np.array([0.1, 0.2]))

    def test_out_of_range_rejected(self, graph):
        with pytest.raises(GraphError, match="\\[0, 1\\]"):
            EdgeProbabilities(graph, np.array([0.1, 0.2, 0.3, 1.5]))
        with pytest.raises(GraphError):
            EdgeProbabilities(graph, np.array([0.1, 0.2, 0.3, -0.1]))

    def test_empty_graph(self):
        graph = SocialGraph(3, [])
        probs = EdgeProbabilities(graph, np.empty(0))
        assert probs.values.shape == (0,)


class TestQueries:
    def test_get_non_edge_raises(self, graph):
        probs = EdgeProbabilities.constant(graph, 0.5)
        with pytest.raises(GraphError, match="not an edge"):
            probs.get(3, 0)

    def test_get_or_zero(self, graph):
        probs = EdgeProbabilities.constant(graph, 0.5)
        assert probs.get_or_zero(0, 1) == 0.5
        assert probs.get_or_zero(3, 0) == 0.0

    def test_out_edges_alignment(self, graph):
        probs = EdgeProbabilities.from_function(graph, lambda u, v: v / 10.0)
        targets, values = probs.out_edges(0)
        assert targets.tolist() == [1, 2]
        assert values.tolist() == pytest.approx([0.1, 0.2])

    def test_out_edges_sink(self, graph):
        probs = EdgeProbabilities.constant(graph, 0.5)
        targets, values = probs.out_edges(3)
        assert targets.shape == (0,)
        assert values.shape == (0,)

    def test_values_canonical_order(self, graph):
        probs = EdgeProbabilities.from_function(
            graph, lambda u, v: (u * 10 + v) / 100.0
        )
        expected = [(u * 10 + v) / 100.0 for u, v in graph.edge_array()]
        np.testing.assert_allclose(probs.values, expected)
