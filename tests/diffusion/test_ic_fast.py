"""Unit tests for the vectorised IC simulator (equivalence with the loop)."""

import time

import numpy as np
import pytest

from repro.data.graph import SocialGraph
from repro.data.synthetic import GraphConfig, generate_power_law_graph
from repro.diffusion.ic import simulate_ic, simulate_ic_fast
from repro.diffusion.montecarlo import activation_frequencies
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import GraphError


@pytest.fixture
def chain_probs() -> EdgeProbabilities:
    graph = SocialGraph(4, [(0, 1), (1, 2), (2, 3)])
    return EdgeProbabilities.constant(graph, 1.0)


class TestDeterministicEquivalence:
    def test_p_one_chain(self, chain_probs):
        result = simulate_ic_fast(chain_probs, [0], seed=0)
        assert result.activated.tolist() == [0, 1, 2, 3]
        assert result.activation_round.tolist() == [0, 1, 2, 3]

    def test_p_zero(self):
        graph = SocialGraph(3, [(0, 1), (1, 2)])
        probs = EdgeProbabilities.constant(graph, 0.0)
        result = simulate_ic_fast(probs, [0], seed=0)
        assert result.activated.tolist() == [0]

    def test_reachability_with_p_one(self):
        graph = generate_power_law_graph(GraphConfig(num_users=100), seed=2)
        probs = EdgeProbabilities.constant(graph, 1.0)
        slow = simulate_ic(probs, [5], seed=0)
        fast = simulate_ic_fast(probs, [5], seed=0)
        assert slow.activated_set() == fast.activated_set()

    def test_duplicate_seeds_collapse(self, chain_probs):
        result = simulate_ic_fast(chain_probs, [0, 0], seed=0)
        assert result.activated.tolist()[:1] == [0]

    def test_max_rounds(self, chain_probs):
        result = simulate_ic_fast(chain_probs, [0], seed=0, max_rounds=2)
        assert result.activated.tolist() == [0, 1, 2]

    def test_seed_out_of_range(self, chain_probs):
        with pytest.raises(GraphError):
            simulate_ic_fast(chain_probs, [9], seed=0)

    def test_empty_seeds(self, chain_probs):
        assert simulate_ic_fast(chain_probs, [], seed=0).size == 0


class TestStatisticalEquivalence:
    def test_activation_frequencies_agree(self):
        """Slow and fast simulators must estimate the same distribution."""
        graph = generate_power_law_graph(GraphConfig(num_users=60), seed=3)
        probs = EdgeProbabilities.constant(graph, 0.15)
        slow = activation_frequencies(probs, [0, 1], num_runs=3000, seed=0, fast=False)
        fast = activation_frequencies(probs, [0, 1], num_runs=3000, seed=1, fast=True)
        np.testing.assert_allclose(slow, fast, atol=0.05)

    def test_per_node_single_chance_semantics(self):
        graph = SocialGraph(2, [(0, 1)])
        probs = EdgeProbabilities.constant(graph, 0.5)
        freqs = activation_frequencies(probs, [0], num_runs=4000, seed=0, fast=True)
        assert freqs[1] == pytest.approx(0.5, abs=0.03)

    def test_multi_exposure_semantics(self):
        """Two independent 0.5 attempts give 0.75 activation probability."""
        graph = SocialGraph(3, [(0, 2), (1, 2)])
        probs = EdgeProbabilities.constant(graph, 0.5)
        freqs = activation_frequencies(
            probs, [0, 1], num_runs=4000, seed=0, fast=True
        )
        assert freqs[2] == pytest.approx(0.75, abs=0.03)


class TestSpeed:
    def test_fast_is_not_slower_on_dense_cascades(self):
        graph = generate_power_law_graph(GraphConfig(num_users=300), seed=4)
        probs = EdgeProbabilities.constant(graph, 0.3)
        seeds = [0, 1, 2]

        start = time.perf_counter()
        for k in range(30):
            simulate_ic(probs, seeds, seed=k)
        slow_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        for k in range(30):
            simulate_ic_fast(probs, seeds, seed=k)
        fast_elapsed = time.perf_counter() - start
        # Generous bound: the vectorised path must at least keep pace.
        assert fast_elapsed < slow_elapsed * 1.5
