"""Unit tests for Monte-Carlo spread estimation."""

import pytest

from repro.data.graph import SocialGraph
from repro.diffusion.montecarlo import (
    activation_frequencies,
    expected_spread,
    spread_with_standard_error,
)
from repro.diffusion.probabilities import EdgeProbabilities


@pytest.fixture
def chain_probs() -> EdgeProbabilities:
    graph = SocialGraph(3, [(0, 1), (1, 2)])
    return EdgeProbabilities.constant(graph, 0.5)


class TestFrequencies:
    def test_seeds_always_active(self, chain_probs):
        freqs = activation_frequencies(chain_probs, [0], num_runs=200, seed=0)
        assert freqs[0] == 1.0

    def test_frequencies_match_theory(self, chain_probs):
        freqs = activation_frequencies(chain_probs, [0], num_runs=5000, seed=0)
        assert freqs[1] == pytest.approx(0.5, abs=0.03)
        assert freqs[2] == pytest.approx(0.25, abs=0.03)

    def test_monotone_along_chain(self, chain_probs):
        freqs = activation_frequencies(chain_probs, [0], num_runs=2000, seed=0)
        assert freqs[0] >= freqs[1] >= freqs[2]

    def test_invalid_runs(self, chain_probs):
        with pytest.raises(ValueError):
            activation_frequencies(chain_probs, [0], num_runs=0)


class TestSpread:
    def test_expected_spread_theory(self, chain_probs):
        # E[size] = 1 + 0.5 + 0.25 = 1.75
        spread = expected_spread(chain_probs, [0], num_runs=5000, seed=0)
        assert spread == pytest.approx(1.75, abs=0.06)

    def test_deterministic_graph_zero_error(self):
        graph = SocialGraph(2, [(0, 1)])
        probs = EdgeProbabilities.constant(graph, 1.0)
        mean, stderr = spread_with_standard_error(probs, [0], num_runs=50, seed=0)
        assert mean == 2.0
        assert stderr == 0.0

    def test_single_run_standard_error(self, chain_probs):
        _, stderr = spread_with_standard_error(chain_probs, [0], num_runs=1, seed=0)
        assert stderr == 0.0

    def test_spread_increases_with_seeds(self, chain_probs):
        one = expected_spread(chain_probs, [0], num_runs=1000, seed=0)
        two = expected_spread(chain_probs, [0, 2], num_runs=1000, seed=0)
        assert two > one
