"""Unit tests for the Independent Cascade simulator."""

import numpy as np
import pytest

from repro.data.graph import SocialGraph
from repro.diffusion.ic import CascadeResult, activation_probability, simulate_ic
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import GraphError


@pytest.fixture
def chain_probs() -> EdgeProbabilities:
    graph = SocialGraph(4, [(0, 1), (1, 2), (2, 3)])
    return EdgeProbabilities.constant(graph, 1.0)


class TestSimulation:
    def test_deterministic_chain_activates_all(self, chain_probs):
        result = simulate_ic(chain_probs, [0], seed=0)
        assert result.activated.tolist() == [0, 1, 2, 3]
        assert result.activation_round.tolist() == [0, 1, 2, 3]

    def test_zero_probability_stops_at_seed(self):
        graph = SocialGraph(3, [(0, 1), (1, 2)])
        probs = EdgeProbabilities.constant(graph, 0.0)
        result = simulate_ic(probs, [0], seed=0)
        assert result.activated.tolist() == [0]

    def test_duplicate_seeds_collapse(self, chain_probs):
        result = simulate_ic(chain_probs, [0, 0, 1], seed=0)
        assert sorted(result.activated.tolist()) == [0, 1, 2, 3]
        assert result.activation_round[:2].tolist() == [0, 0]

    def test_seed_out_of_range(self, chain_probs):
        with pytest.raises(GraphError):
            simulate_ic(chain_probs, [9], seed=0)

    def test_max_rounds_caps_spread(self, chain_probs):
        result = simulate_ic(chain_probs, [0], seed=0, max_rounds=1)
        assert result.activated.tolist() == [0, 1]

    def test_empty_seed_set(self, chain_probs):
        result = simulate_ic(chain_probs, [], seed=0)
        assert result.size == 0

    def test_single_activation_attempt_semantics(self):
        # u gets ONE chance per neighbour: with p=0.5 over many runs the
        # activation frequency of a leaf must be ~0.5, not higher.
        graph = SocialGraph(2, [(0, 1)])
        probs = EdgeProbabilities.constant(graph, 0.5)
        rng = np.random.default_rng(0)
        activations = sum(
            simulate_ic(probs, [0], rng).size - 1 for _ in range(4000)
        )
        assert activations / 4000 == pytest.approx(0.5, abs=0.03)

    def test_diamond_converges_once(self):
        # 0 -> {1, 2} -> 3 with p=1: node 3 activates exactly once.
        graph = SocialGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        probs = EdgeProbabilities.constant(graph, 1.0)
        result = simulate_ic(probs, [0], seed=0)
        assert sorted(result.activated.tolist()) == [0, 1, 2, 3]
        assert result.size == 4

    def test_result_accessors(self, chain_probs):
        result = simulate_ic(chain_probs, [0], seed=0)
        assert isinstance(result, CascadeResult)
        assert result.activated_set() == frozenset({0, 1, 2, 3})
        assert result.size == 4


class TestEq8:
    def test_closed_form(self):
        assert activation_probability([0.5, 0.5]) == pytest.approx(0.75)
        assert activation_probability([1.0, 0.0]) == pytest.approx(1.0)
        assert activation_probability([0.0, 0.0]) == pytest.approx(0.0)

    def test_empty_is_zero(self):
        assert activation_probability([]) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            activation_probability([1.5])

    def test_monotone_in_extra_friends(self):
        base = activation_probability([0.3])
        more = activation_probability([0.3, 0.2])
        assert more > base
