"""Guard: library code never prints — see ``scripts/check_no_print.py``."""

import sys
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parents[1] / "scripts"


def test_no_bare_print_calls():
    sys.path.insert(0, str(SCRIPTS_DIR))
    try:
        from check_no_print import find_violations
    finally:
        sys.path.remove(str(SCRIPTS_DIR))
    violations = find_violations()
    assert not violations, (
        "bare print() calls outside the rendering surfaces "
        f"(use repro.utils.logging or repro.obs): {violations}"
    )
