"""API-surface tests: every public export exists and is documented."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.apps",
    "repro.baselines",
    "repro.ckpt",
    "repro.core",
    "repro.data",
    "repro.diffusion",
    "repro.eval",
    "repro.extensions",
    "repro.experiments",
    "repro.obs",
    "repro.parallel",
    "repro.serve",
    "repro.sketch",
    "repro.utils",
    "repro.viz",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_docstrings_present(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_objects_documented(module_name):
    """Every exported class and function carries a docstring."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


def test_public_classes_have_documented_methods():
    """Public methods of the flagship classes carry docstrings."""
    from repro import Inf2vecModel, InfluenceEmbedding, SocialGraph
    from repro.data import ActionLog

    for cls in (Inf2vecModel, InfluenceEmbedding, SocialGraph, ActionLog):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member) or isinstance(member, property):
                target = member.fget if isinstance(member, property) else member
                assert target.__doc__, f"{cls.__name__}.{name} lacks a docstring"


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_ckpt_public_api_is_pinned():
    """The checkpoint subsystem's surface is a compatibility contract."""
    import repro.ckpt

    assert set(repro.ckpt.__all__) == {
        "atomic_output",
        "atomic_write_bytes",
        "atomic_write_text",
        "ensure_suffix",
        "CHECKPOINT_VERSION",
        "TrainingState",
        "CheckpointManager",
        "CKPT_WRITE_LATENCY_BUCKETS",
        "CheckpointError",
    }


def test_analysis_public_api_is_pinned():
    """The static-analysis framework's surface is a compatibility contract."""
    import repro.analysis

    assert set(repro.analysis.__all__) == {
        "ALL_PROJECT_RULES",
        "ALL_RULES",
        "AstRule",
        "BASELINE_FILENAME",
        "Finding",
        "ModuleInfo",
        "PARSE_ERROR_RULE",
        "ParsedFile",
        "ProjectAstRule",
        "ProjectGraph",
        "ProjectRule",
        "Rule",
        "analyze_project",
        "analyze_source",
        "baseline_key",
        "build_project_graph",
        "build_project_graph_from_sources",
        "default_project_rules",
        "default_rules",
        "discover_baseline",
        "get_rule",
        "iter_python_files",
        "load_baseline",
        "main",
        "parse_source",
        "run_analysis",
        "save_baseline",
    }


def test_parallel_public_api_is_pinned():
    """The hogwild training subsystem's surface is a compatibility contract."""
    import repro.parallel

    assert set(repro.parallel.__all__) == {
        "HogwildTrainer",
        "PARAMETER_FIELDS",
        "SharedEmbedding",
        "SharedEmbeddingSpec",
        "shard_episodes",
    }


def test_serve_public_api_is_pinned():
    """The serving layer's surface is a compatibility contract."""
    import repro.serve

    assert set(repro.serve.__all__) == {
        "DEFAULT_BLOCK_SIZE",
        "EmbeddingLike",
        "EmbeddingStore",
        "INDEX_DIRECTIONS",
        "INDEX_FORMAT_VERSION",
        "InfluenceService",
        "SERVE_LATENCY_BUCKETS",
        "STORE_FORMAT_VERSION",
        "STORE_MANIFEST_FILENAME",
        "TopKEngine",
        "TopKIndex",
        "TopKResult",
        "aggregated_scores",
        "augment_sources",
        "augment_targets",
        "iter_blocks",
        "iter_source_rows",
        "score_block",
    }


def test_pinned_api_rule_covers_the_public_modules():
    """The pinned-api rule and this file's module list agree.

    Every PUBLIC_MODULES package maps to an ``__init__.py`` under
    ``src/repro`` that the rule requires to declare ``__all__`` — so a
    package added here without a declared surface fails the analysis
    guard, and vice versa.
    """
    import pathlib

    src_root = pathlib.Path(__file__).resolve().parents[1] / "src"
    for module_name in PUBLIC_MODULES:
        init = src_root.joinpath(*module_name.split(".")) / "__init__.py"
        assert init.is_file(), f"{module_name} is not a package under src/"


def test_ckpt_types_reexported_from_top_level():
    import repro

    for name in ("CheckpointManager", "TrainingState", "CheckpointError"):
        assert name in repro.__all__
        assert hasattr(repro, name)
