"""Unit tests for the diffusion-prediction protocol."""

import numpy as np
import pytest

from repro.core.embeddings import InfluenceEmbedding
from repro.core.prediction import EmbeddingPredictor
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.errors import EvaluationError
from repro.eval.diffusion import evaluate_diffusion, make_query


class TestMakeQuery:
    def test_five_percent_seeds(self):
        episode = DiffusionEpisode(
            0, [(u, float(u)) for u in range(40)]
        )
        query = make_query(episode, seed_fraction=0.05)
        assert query.seeds == (0, 1)
        assert len(query.ground_truth) == 38

    def test_minimum_one_seed(self):
        episode = DiffusionEpisode(0, [(0, 1.0), (1, 2.0), (2, 3.0)])
        query = make_query(episode, seed_fraction=0.05)
        assert query.seeds == (0,)
        assert query.ground_truth == frozenset({1, 2})

    def test_too_small_episode_none(self):
        assert make_query(DiffusionEpisode(0, [(0, 1.0)])) is None
        assert make_query(DiffusionEpisode(0, [])) is None

    def test_seeds_never_cover_everything(self):
        episode = DiffusionEpisode(0, [(0, 1.0), (1, 2.0)])
        query = make_query(episode, seed_fraction=0.99)
        assert len(query.seeds) == 1
        assert len(query.ground_truth) == 1

    def test_invalid_fraction(self):
        episode = DiffusionEpisode(0, [(0, 1.0), (1, 2.0)])
        with pytest.raises(EvaluationError):
            make_query(episode, seed_fraction=0.0)
        with pytest.raises(EvaluationError):
            make_query(episode, seed_fraction=1.0)


class _OraclePredictor:
    """Knows the ground truth; must achieve AUC 1."""

    def __init__(self, truth, num_users):
        self.truth = truth
        self.num_users = num_users

    def activation_score(self, candidate, friends):
        raise NotImplementedError

    def diffusion_scores(self, seeds):
        scores = np.zeros(self.num_users)
        scores[list(self.truth)] = 1.0
        return scores


class TestEvaluate:
    def test_oracle_scores_one(self):
        episode = DiffusionEpisode(0, [(u, float(u)) for u in range(10)])
        log = ActionLog([episode], num_users=20)
        truth = set(range(1, 10))  # seed is user 0
        result = evaluate_diffusion(_OraclePredictor(truth, 20), 20, log)
        assert result.auc == 1.0
        assert result.map == 1.0

    def test_seeds_excluded_from_candidates(self):
        episode = DiffusionEpisode(0, [(u, float(u)) for u in range(10)])
        log = ActionLog([episode], num_users=20)
        result = evaluate_diffusion(_OraclePredictor(set(range(1, 10)), 20), 20, log)
        assert result.num_candidates == 19  # 20 users - 1 seed

    def test_embedding_predictor_end_to_end(self):
        episode = DiffusionEpisode(0, [(u, float(u)) for u in range(6)])
        log = ActionLog([episode], num_users=10)
        emb = InfluenceEmbedding.initialize(10, 4, seed=0)
        result = evaluate_diffusion(EmbeddingPredictor(emb), 10, log)
        assert 0.0 <= result.auc <= 1.0

    def test_wrong_score_shape_rejected(self):
        episode = DiffusionEpisode(0, [(0, 1.0), (1, 2.0)])
        log = ActionLog([episode], num_users=5)

        class BadPredictor:
            def diffusion_scores(self, seeds):
                return np.zeros(3)

        with pytest.raises(EvaluationError, match="shape"):
            evaluate_diffusion(BadPredictor(), 5, log)

    def test_empty_log_rejected(self):
        with pytest.raises(EvaluationError, match="no episodes"):
            evaluate_diffusion(None, 5, ActionLog([], num_users=5))

    def test_all_tiny_episodes_rejected(self):
        log = ActionLog([DiffusionEpisode(0, [(0, 1.0)])], num_users=5)
        with pytest.raises(EvaluationError, match="large enough"):
            evaluate_diffusion(_OraclePredictor(set(), 5), 5, log)
