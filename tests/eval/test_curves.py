"""Unit tests for ROC / precision-recall curves."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.curves import curve_to_text, precision_recall_curve, roc_curve
from repro.eval.metrics import average_precision, ranking_auc
from repro.utils.rng import ensure_rng


class TestRocCurve:
    def test_perfect_classifier(self):
        curve = roc_curve([3.0, 2.0, 1.0, 0.5], [1, 1, 0, 0])
        assert curve.auc == pytest.approx(1.0)
        assert curve.true_positive_rate[0] == 0.0
        assert curve.true_positive_rate[-1] == 1.0
        assert curve.false_positive_rate[-1] == 1.0

    def test_auc_matches_ranking_metric(self):
        rng = ensure_rng(0)
        scores = rng.normal(size=200)
        labels = (rng.random(200) < 0.3).astype(int)
        if labels.sum() in (0, 200):
            labels[0] = 1 - labels[0]
        curve = roc_curve(scores, labels)
        assert curve.auc == pytest.approx(ranking_auc(scores, labels), abs=1e-9)

    def test_tie_handling_matches_rank_auc(self):
        scores = [1.0, 1.0, 1.0, 0.0]
        labels = [1, 0, 1, 0]
        curve = roc_curve(scores, labels)
        assert curve.auc == pytest.approx(ranking_auc(scores, labels), abs=1e-9)

    def test_monotone_axes(self):
        rng = ensure_rng(1)
        scores = rng.normal(size=50)
        labels = (rng.random(50) < 0.5).astype(int)
        curve = roc_curve(scores, labels)
        assert np.all(np.diff(curve.false_positive_rate) >= 0)
        assert np.all(np.diff(curve.true_positive_rate) >= 0)

    def test_single_class_rejected(self):
        with pytest.raises(EvaluationError):
            roc_curve([1.0, 2.0], [1, 1])


class TestPrecisionRecallCurve:
    def test_perfect_classifier(self):
        curve = precision_recall_curve([3.0, 2.0, 1.0], [1, 1, 0])
        assert curve.average_precision == pytest.approx(1.0)
        assert curve.recall[-1] == 1.0

    def test_ap_matches_metric_without_ties(self):
        rng = ensure_rng(0)
        scores = rng.permutation(100).astype(float)  # all distinct
        labels = (rng.random(100) < 0.2).astype(int)
        if labels.sum() == 0:
            labels[0] = 1
        curve = precision_recall_curve(scores, labels)
        assert curve.average_precision == pytest.approx(
            average_precision(scores, labels), abs=1e-9
        )

    def test_recall_monotone(self):
        rng = ensure_rng(2)
        scores = rng.normal(size=60)
        labels = (rng.random(60) < 0.4).astype(int)
        curve = precision_recall_curve(scores, labels)
        assert np.all(np.diff(curve.recall) >= 0)

    def test_single_class_rejected(self):
        with pytest.raises(EvaluationError):
            precision_recall_curve([1.0], [0])


class TestAsciiCurve:
    def test_renders(self):
        curve = roc_curve([3.0, 2.0, 1.0, 0.5], [1, 0, 1, 0])
        text = curve_to_text(
            curve.false_positive_rate, curve.true_positive_rate, width=30, height=8
        )
        lines = text.splitlines()
        assert len(lines) == 8
        assert all(len(line) == 30 for line in lines)
        assert "*" in text

    def test_too_few_points_rejected(self):
        with pytest.raises(EvaluationError):
            curve_to_text(np.array([0.0]), np.array([0.0]))
