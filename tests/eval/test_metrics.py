"""Unit tests for AUC / MAP / P@N."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.metrics import (
    EvaluationResult,
    RankingEvaluator,
    average_precision,
    precision_at_n,
    ranking_auc,
)


class TestAUC:
    def test_perfect_ranking(self):
        assert ranking_auc([3.0, 2.0, 1.0], [1, 1, 0]) == 1.0

    def test_inverted_ranking(self):
        assert ranking_auc([1.0, 2.0, 3.0], [1, 0, 0]) == 0.0

    def test_random_ties(self):
        assert ranking_auc([1.0, 1.0], [1, 0]) == 0.5

    def test_hand_computed(self):
        # pos scores {3, 1}; neg scores {2, 0}. Pairs won: (3>2),(3>0),(1>0)=3/4
        auc = ranking_auc([3.0, 1.0, 2.0, 0.0], [1, 1, 0, 0])
        assert auc == pytest.approx(0.75)

    def test_single_class_nan(self):
        assert np.isnan(ranking_auc([1.0, 2.0], [1, 1]))
        assert np.isnan(ranking_auc([1.0, 2.0], [0, 0]))

    def test_antisymmetry(self):
        scores = [0.3, 0.9, 0.1, 0.5]
        labels = [1, 0, 1, 0]
        flipped = [1 - l for l in labels]
        auc = ranking_auc(scores, labels)
        assert ranking_auc(scores, flipped) == pytest.approx(1.0 - auc)

    def test_validation(self):
        with pytest.raises(EvaluationError, match="binary"):
            ranking_auc([1.0], [2])
        with pytest.raises(EvaluationError, match="shape"):
            ranking_auc([1.0, 2.0], [1])
        with pytest.raises(EvaluationError, match="finite"):
            ranking_auc([np.inf], [1])


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision([3.0, 2.0, 1.0], [1, 1, 0]) == 1.0

    def test_hand_computed(self):
        # Ranking: pos@1, neg@2, pos@3 -> AP = (1/1 + 2/3)/2
        ap = average_precision([3.0, 2.0, 1.0], [1, 0, 1])
        assert ap == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)

    def test_no_positives_nan(self):
        assert np.isnan(average_precision([1.0], [0]))

    def test_worst_case(self):
        # One positive ranked last of 4.
        ap = average_precision([4.0, 3.0, 2.0, 1.0], [0, 0, 0, 1])
        assert ap == pytest.approx(0.25)


class TestPrecisionAtN:
    def test_basic(self):
        scores = [5.0, 4.0, 3.0, 2.0, 1.0]
        labels = [1, 0, 1, 0, 1]
        assert precision_at_n(scores, labels, 1) == 1.0
        assert precision_at_n(scores, labels, 2) == 0.5
        assert precision_at_n(scores, labels, 5) == pytest.approx(0.6)

    def test_fewer_items_than_n(self):
        # Strict denominator: missing slots are misses.
        assert precision_at_n([1.0], [1], 10) == pytest.approx(0.1)

    def test_empty(self):
        assert precision_at_n([], [], 10) == 0.0

    def test_invalid_n(self):
        with pytest.raises(EvaluationError):
            precision_at_n([1.0], [1], 0)


class TestRankingEvaluator:
    def test_pools_and_averages(self):
        ev = RankingEvaluator(precision_cutoffs=(2,))
        ev.add_query([3.0, 1.0], [1, 0])  # AP = 1.0
        ev.add_query([1.0, 2.0], [1, 0])  # AP = 0.5
        result = ev.result()
        assert result.map == pytest.approx(0.75)
        assert result.num_queries == 2
        assert result.num_candidates == 4
        assert result.num_positives == 2
        assert 0.0 <= result.auc <= 1.0

    def test_query_without_positives_skipped_for_map(self):
        ev = RankingEvaluator(precision_cutoffs=(2,))
        ev.add_query([3.0, 1.0], [1, 0])
        ev.add_query([1.0, 2.0], [0, 0])  # no positives
        result = ev.result()
        assert result.map == pytest.approx(1.0)
        assert result.num_queries == 2

    def test_empty_evaluator_raises(self):
        with pytest.raises(EvaluationError, match="no queries"):
            RankingEvaluator().result()

    def test_empty_query_counted_but_metric_free(self):
        """Empty queries count toward num_queries (docstring contract)
        without contributing candidates or positives to the pool."""
        ev = RankingEvaluator(precision_cutoffs=(2,))
        ev.add_query([], [])
        assert ev.num_queries == 1
        ev.add_query([3.0, 1.0], [1, 0])
        ev.add_query([], [])
        assert ev.num_queries == 3
        result = ev.result()
        assert result.num_queries == 3
        assert result.num_candidates == 2
        assert result.num_positives == 1
        # Pooled metrics are identical to the same run without the
        # empty queries.
        solo = RankingEvaluator(precision_cutoffs=(2,))
        solo.add_query([3.0, 1.0], [1, 0])
        assert result.auc == solo.result().auc
        assert result.map == solo.result().map

    def test_only_empty_queries_still_raise(self):
        ev = RankingEvaluator()
        ev.add_query([], [])
        with pytest.raises(EvaluationError, match="no queries"):
            ev.result()

    def test_result_row_layout(self):
        ev = RankingEvaluator(precision_cutoffs=(10, 50, 100))
        ev.add_query([1.0, 0.5], [1, 0])
        row = ev.result().as_row()
        assert list(row) == ["AUC", "MAP", "P@10", "P@50", "P@100"]

    def test_str_formatting(self):
        result = EvaluationResult(auc=0.5, map=0.25, precision_at={10: 0.1})
        assert "AUC=0.5000" in str(result)
        assert "P@10=0.1000" in str(result)
