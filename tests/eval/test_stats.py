"""Unit tests for power-law fitting and the active-friend CDF."""

import numpy as np
import pytest

from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import EvaluationError
from repro.eval.stats import (
    active_friend_cdf,
    active_friend_counts,
    fit_power_law,
    power_law_r_squared,
    spontaneous_share,
)
from repro.utils.rng import ensure_rng


class TestPowerLaw:
    def test_recovers_exponent(self):
        rng = ensure_rng(0)
        # The continuous-approximation MLE is accurate for x_min >= ~5
        # (Clauset et al.); discrete data at x_min=1 biases it low.
        samples = rng.zipf(2.5, size=100000)
        fit = fit_power_law(samples.tolist(), x_min=5)
        assert fit.exponent == pytest.approx(2.5, abs=0.2)

    def test_straight_line_r_squared_high_for_power_law(self):
        rng = ensure_rng(0)
        samples = rng.zipf(2.0, size=20000)
        assert power_law_r_squared(samples.tolist()) > 0.85

    def test_r_squared_low_for_uniform(self):
        rng = ensure_rng(0)
        samples = rng.integers(1, 50, size=5000)
        assert power_law_r_squared(samples.tolist()) < 0.5

    def test_x_min_filters(self):
        fit = fit_power_law([1, 1, 1, 5, 6, 7], x_min=5)
        assert fit.num_samples == 3
        assert fit.x_min == 5

    def test_too_few_samples_rejected(self):
        with pytest.raises(EvaluationError):
            fit_power_law([3])
        with pytest.raises(EvaluationError):
            fit_power_law([], x_min=1)

    def test_invalid_x_min(self):
        with pytest.raises(EvaluationError):
            fit_power_law([1, 2, 3], x_min=0)

    def test_degenerate_single_value(self):
        assert power_law_r_squared([4, 4, 4]) == 1.0


class TestActiveFriendCounts:
    @pytest.fixture
    def graph(self) -> SocialGraph:
        return SocialGraph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])

    def test_counts_replay(self, graph):
        episode = DiffusionEpisode(0, [(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)])
        counts = active_friend_counts(graph, episode)
        # 0: none; 1: friend 0 active; 2: friends 0 and 1 active; 3: 2 active.
        assert counts.tolist() == [0, 1, 2, 1]

    def test_order_matters(self, graph):
        episode = DiffusionEpisode(0, [(3, 1.0), (2, 2.0), (1, 3.0), (0, 4.0)])
        counts = active_friend_counts(graph, episode)
        assert counts.tolist() == [0, 0, 0, 0]

    def test_cdf(self, graph):
        episode = DiffusionEpisode(0, [(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)])
        log = ActionLog([episode], num_users=4)
        cdf = active_friend_cdf(graph, log, max_count=2)
        assert cdf[0] == pytest.approx(0.25)
        assert cdf[1] == pytest.approx(0.75)
        assert cdf[2] == pytest.approx(1.0)

    def test_cdf_monotone(self, graph):
        episode = DiffusionEpisode(0, [(0, 1.0), (1, 2.0), (2, 3.0)])
        log = ActionLog([episode], num_users=4)
        cdf = active_friend_cdf(graph, log, max_count=5)
        values = [cdf[x] for x in sorted(cdf)]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_spontaneous_share(self, graph):
        episode = DiffusionEpisode(0, [(0, 1.0), (1, 2.0)])
        log = ActionLog([episode], num_users=4)
        assert spontaneous_share(graph, log) == pytest.approx(0.5)

    def test_empty_log_rejected(self, graph):
        with pytest.raises(EvaluationError):
            active_friend_cdf(graph, ActionLog([], num_users=4))

    def test_negative_max_count_rejected(self, graph):
        episode = DiffusionEpisode(0, [(0, 1.0)])
        log = ActionLog([episode], num_users=4)
        with pytest.raises(EvaluationError):
            active_friend_cdf(graph, log, max_count=-1)
