"""Unit tests for tuning-split grid search."""

import pytest

from repro.baselines import DegreeModel, Inf2vecMethod, StaticModel
from repro.core.context import ContextConfig
from repro.core.inf2vec import Inf2vecConfig
from repro.errors import EvaluationError
from repro.eval.tuning import grid_search


@pytest.fixture(scope="module")
def world(small_dataset, small_splits):
    train, tune, _test = small_splits
    return small_dataset.graph, train, tune


class TestGridSearch:
    def test_covers_cartesian_product(self, world):
        graph, train, tune = world
        calls = []

        def factory(**params):
            calls.append(params)
            return StaticModel(smoothing=params["smoothing"])

        result = grid_search(
            factory,
            {"smoothing": [0.0, 1.0], "unused": ["a", "b"]},
            graph,
            train,
            tune,
            predictor_kwargs={"num_runs": 5, "seed": 0},
        )
        assert len(result.trials) == 4
        assert len(calls) == 4

    def test_best_params_maximise_metric(self, world):
        graph, train, tune = world

        def factory(**params):
            # "good" trains ST; "bad" trains the degree heuristic.
            return StaticModel() if params["kind"] == "good" else DegreeModel()

        result = grid_search(
            factory,
            {"kind": ["bad", "good"]},
            graph,
            train,
            tune,
            metric="MAP",
            predictor_kwargs={"num_runs": 5, "seed": 0},
        )
        by_kind = {t.params["kind"]: t.metric("MAP") for t in result.trials}
        expected = max(by_kind, key=by_kind.get)
        assert result.best_params["kind"] == expected

    def test_inf2vec_alpha_tuning_runs(self, world):
        graph, train, tune = world

        def factory(**params):
            config = Inf2vecConfig(
                dim=4,
                epochs=2,
                context=ContextConfig(length=6, alpha=params["alpha"]),
            )
            return Inf2vecMethod(config, seed=0)

        result = grid_search(
            factory, {"alpha": [0.2, 1.0]}, graph, train, tune
        )
        assert result.best_params["alpha"] in (0.2, 1.0)
        assert "alpha" in result.table()

    def test_diffusion_task(self, world):
        graph, train, tune = world
        result = grid_search(
            lambda **p: StaticModel(),
            {"dummy": [1]},
            graph,
            train,
            tune,
            task="diffusion",
            predictor_kwargs={"num_runs": 5, "seed": 0},
        )
        assert len(result.trials) == 1

    def test_invalid_inputs(self, world):
        graph, train, tune = world
        with pytest.raises(EvaluationError, match="param_grid"):
            grid_search(lambda **p: StaticModel(), {}, graph, train, tune)
        with pytest.raises(EvaluationError, match="task"):
            grid_search(
                lambda **p: StaticModel(),
                {"x": [1]},
                graph,
                train,
                tune,
                task="ranking",
            )

    def test_unknown_metric_fails_loudly(self, world):
        graph, train, tune = world
        with pytest.raises(KeyError):
            grid_search(
                lambda **p: StaticModel(),
                {"x": [1]},
                graph,
                train,
                tune,
                metric="F1",
                predictor_kwargs={"num_runs": 5, "seed": 0},
            )
