"""Unit tests for the multi-run protocol and significance testing."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.metrics import EvaluationResult
from repro.eval.protocol import (
    MultiRunResult,
    format_table,
    paired_significance,
    repeat_evaluation,
)


def _result(auc: float, map_: float = 0.5) -> EvaluationResult:
    return EvaluationResult(auc=auc, map=map_, precision_at={10: 0.1})


class TestMultiRunResult:
    def test_mean_and_std(self):
        runs = MultiRunResult(runs=(_result(0.8), _result(0.9)))
        assert runs.mean("AUC") == pytest.approx(0.85)
        assert runs.std("AUC") == pytest.approx(np.std([0.8, 0.9], ddof=1))

    def test_single_run_std_zero(self):
        runs = MultiRunResult(runs=(_result(0.8),))
        assert runs.std("AUC") == 0.0

    def test_unknown_metric(self):
        runs = MultiRunResult(runs=(_result(0.8),))
        with pytest.raises(EvaluationError, match="unknown metric"):
            runs.mean("F1")

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            MultiRunResult(runs=())

    def test_summary_covers_all_metrics(self):
        runs = MultiRunResult(runs=(_result(0.8), _result(0.6)))
        summary = runs.summary()
        assert set(summary) == {"AUC", "MAP", "P@10"}
        assert summary["AUC"][0] == pytest.approx(0.7)


class TestRepeatEvaluation:
    def test_runs_with_distinct_seeds(self):
        seen = []

        def run(seed: int) -> EvaluationResult:
            seen.append(seed)
            return _result(0.5)

        result = repeat_evaluation(run, num_runs=5, seed=0)
        assert len(result.runs) == 5
        assert len(set(seen)) == 5

    def test_deterministic_seed_sequence(self):
        collect_a, collect_b = [], []
        repeat_evaluation(lambda s: (collect_a.append(s), _result(0.5))[1], 3, seed=9)
        repeat_evaluation(lambda s: (collect_b.append(s), _result(0.5))[1], 3, seed=9)
        assert collect_a == collect_b

    def test_invalid_num_runs(self):
        with pytest.raises(EvaluationError):
            repeat_evaluation(lambda s: _result(0.5), num_runs=0)


class TestSignificance:
    def test_clear_difference_significant(self):
        a = MultiRunResult(runs=tuple(_result(0.9 + 0.001 * i) for i in range(5)))
        b = MultiRunResult(runs=tuple(_result(0.5 + 0.001 * i) for i in range(5)))
        test = paired_significance(a, b, "AUC")
        assert test.mean_difference == pytest.approx(0.4)
        assert test.significant(0.05)

    def test_identical_runs_not_significant(self):
        a = MultiRunResult(runs=(_result(0.5), _result(0.5)))
        test = paired_significance(a, a, "AUC")
        assert test.p_value == 1.0
        assert not test.significant()

    def test_constant_nonzero_difference(self):
        a = MultiRunResult(runs=(_result(0.9), _result(0.8)))
        b = MultiRunResult(runs=(_result(0.8), _result(0.7)))
        test = paired_significance(a, b, "AUC")
        assert test.p_value == 0.0
        assert test.significant()

    def test_mismatched_runs_rejected(self):
        a = MultiRunResult(runs=(_result(0.9),))
        b = MultiRunResult(runs=(_result(0.8), _result(0.7)))
        with pytest.raises(EvaluationError, match="differ"):
            paired_significance(a, b)

    def test_too_few_runs_rejected(self):
        a = MultiRunResult(runs=(_result(0.9),))
        with pytest.raises(EvaluationError, match="at least 2"):
            paired_significance(a, a)


class TestFormatTable:
    def test_contains_methods_and_metrics(self):
        table = format_table(
            {"ST": _result(0.86), "Inf2vec": _result(0.89)},
            metrics=("AUC", "MAP", "P@10"),
        )
        assert "ST" in table
        assert "Inf2vec" in table
        assert "0.8900" in table
        assert table.splitlines()[0].startswith("Method")

    def test_missing_metric_rendered_as_nan(self):
        table = format_table({"ST": _result(0.86)}, metrics=("P@50",))
        assert "nan" in table
