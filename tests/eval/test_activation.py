"""Unit tests for the activation-prediction protocol."""

import pytest

from repro.core.embeddings import InfluenceEmbedding
from repro.core.prediction import EmbeddingPredictor
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import EvaluationError
from repro.eval.activation import episode_candidates, evaluate_activation

import numpy as np


@pytest.fixture
def graph() -> SocialGraph:
    # 0 -> 1 -> 2, 0 -> 3 (3 never adopts: negative candidate)
    return SocialGraph(4, [(0, 1), (1, 2), (0, 3)])


@pytest.fixture
def episode() -> DiffusionEpisode:
    return DiffusionEpisode(0, [(0, 1.0), (1, 2.0), (2, 3.0)])


class TestCandidates:
    def test_positive_candidates_with_influencers(self, graph, episode):
        candidates = episode_candidates(graph, episode)
        positives = {c.user: c for c in candidates if c.label == 1}
        # 0 adopted first with no active friends: not a candidate.
        assert 0 not in positives
        assert positives[1].active_friends == (0,)
        assert positives[2].active_friends == (1,)

    def test_negative_candidates(self, graph, episode):
        candidates = episode_candidates(graph, episode)
        negatives = {c.user: c for c in candidates if c.label == 0}
        assert set(negatives) == {3}
        assert negatives[3].active_friends == (0,)

    def test_friend_order_is_activation_order(self):
        graph = SocialGraph(3, [(0, 2), (1, 2)])
        episode = DiffusionEpisode(0, [(1, 1.0), (0, 2.0), (2, 3.0)])
        candidates = episode_candidates(graph, episode)
        positive = next(c for c in candidates if c.user == 2)
        assert positive.active_friends == (1, 0)

    def test_spontaneous_adopters_not_candidates(self):
        graph = SocialGraph(3, [(0, 1)])
        # 2 adopts but has no friends at all.
        episode = DiffusionEpisode(0, [(0, 1.0), (2, 2.0)])
        candidates = episode_candidates(graph, episode)
        assert {c.user for c in candidates} == {1}
        assert all(c.label == 0 for c in candidates)

    def test_empty_episode_no_candidates(self, graph):
        assert episode_candidates(graph, DiffusionEpisode(0, [])) == []


class TestEvaluate:
    def test_perfect_predictor_scores_one(self, graph, episode):
        """An oracle that knows the adopters must get AUC 1."""
        adopters = episode.user_set()

        class Oracle:
            def activation_score(self, candidate, friends):
                return 1.0 if candidate in adopters else 0.0

            def diffusion_scores(self, seeds):
                raise NotImplementedError

        log = ActionLog([episode], num_users=4)
        result = evaluate_activation(Oracle(), graph, log)
        assert result.auc == 1.0
        assert result.map == 1.0

    def test_embedding_predictor_end_to_end(self, graph, episode):
        emb = InfluenceEmbedding.initialize(4, 4, seed=0)
        log = ActionLog([episode], num_users=4)
        result = evaluate_activation(EmbeddingPredictor(emb), graph, log)
        assert 0.0 <= result.auc <= 1.0
        assert result.num_candidates == 3

    def test_empty_log_rejected(self, graph):
        with pytest.raises(EvaluationError, match="no episodes"):
            evaluate_activation(None, graph, ActionLog([], num_users=4))

    def test_all_singleton_episodes_rejected(self, graph):
        log = ActionLog(
            [DiffusionEpisode(0, [(3, 1.0)])], num_users=4
        )
        emb = InfluenceEmbedding.initialize(4, 2, seed=0)
        with pytest.raises(EvaluationError, match="no test episode"):
            evaluate_activation(EmbeddingPredictor(emb), graph, log)

    def test_multiple_episodes_multiple_queries(self, graph):
        episodes = [
            DiffusionEpisode(0, [(0, 1.0), (1, 2.0)]),
            DiffusionEpisode(1, [(1, 1.0), (2, 2.0)]),
        ]
        log = ActionLog(episodes, num_users=4)
        emb = InfluenceEmbedding.initialize(4, 2, seed=0)
        result = evaluate_activation(EmbeddingPredictor(emb), graph, log)
        assert result.num_queries == 2
