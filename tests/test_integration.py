"""Integration tests: end-to-end pipelines across modules."""

import numpy as np
import pytest

from repro.baselines import make_method
from repro.core.context import ContextConfig
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.core.prediction import EmbeddingPredictor
from repro.data.loaders import load_dataset, write_action_log, write_edge_list
from repro.data.synthetic import SyntheticSocialDataset
from repro.eval import (
    evaluate_activation,
    evaluate_diffusion,
    repeat_evaluation,
    spontaneous_share,
)


@pytest.fixture(scope="module")
def dataset() -> SyntheticSocialDataset:
    return SyntheticSocialDataset.digg_like(num_users=250, num_items=100, seed=42)


@pytest.fixture(scope="module")
def splits(dataset):
    return dataset.log.split((0.8, 0.1, 0.1), seed=42)


class TestTrainPredictEvaluate:
    def test_inf2vec_beats_degree_baseline(self, dataset, splits):
        """The most basic end-to-end claim: learning beats not learning."""
        train, _tune, test = splits
        inf2vec = Inf2vecModel(
            Inf2vecConfig(
                dim=16, epochs=12, learning_rate=0.01,
                context=ContextConfig(length=15, alpha=0.2),
            ),
            seed=1,
        ).fit(dataset.graph, train)
        de = make_method("DE").fit(dataset.graph, train)

        ours = evaluate_activation(
            EmbeddingPredictor(inf2vec.embedding), dataset.graph, test
        )
        theirs = evaluate_activation(
            de.predictor(num_runs=10, seed=0), dataset.graph, test
        )
        assert ours.auc > theirs.auc
        assert ours.map > theirs.map

    def test_inf2vec_recovers_observed_influence_pairs(self, dataset, splits):
        """Within each source, frequently observed influence targets
        must outscore random never-influenced users.

        (Cross-source comparisons of raw x(u, .) are not meaningful —
        each source carries its own SGNS calibration — so the test
        checks the within-source ranking the predictors actually use.)
        """
        from repro.core.pairs import pair_frequencies

        train, _tune, _test = splits
        model = Inf2vecModel(
            Inf2vecConfig(
                dim=16, epochs=12, learning_rate=0.02,
                context=ContextConfig(length=15, alpha=0.5),
            ),
            seed=1,
        ).fit(dataset.graph, train)
        emb = model.embedding
        freqs = pair_frequencies(dataset.graph, train)
        rng = np.random.default_rng(0)
        wins = total = 0
        for (source, target), _count in freqs.pair_counts.most_common(200):
            random_user = int(rng.integers(dataset.graph.num_nodes))
            if random_user == target or (source, random_user) in freqs.pair_counts:
                continue
            wins += int(emb.score(source, target) > emb.score(source, random_user))
            total += 1
        assert total > 100
        assert wins / total > 0.65

    def test_diffusion_evaluation_all_methods(self, dataset, splits):
        """Every registry method runs the diffusion task end to end."""
        train, _tune, test = splits
        for name in ("DE", "ST", "MF"):
            model = make_method(name, **({"seed": 0} if name == "MF" else {}))
            model.fit(dataset.graph, train)
            result = evaluate_diffusion(
                model.predictor(num_runs=20, seed=0),
                dataset.graph.num_nodes,
                test,
            )
            assert 0.0 <= result.auc <= 1.0


class TestMultiRunProtocol:
    def test_repeat_evaluation_with_real_model(self, dataset, splits):
        train, _tune, test = splits

        def run(seed: int):
            model = Inf2vecModel(
                Inf2vecConfig(
                    dim=8, epochs=3, context=ContextConfig(length=8, alpha=0.2)
                ),
                seed=seed,
            ).fit(dataset.graph, train)
            return evaluate_activation(
                EmbeddingPredictor(model.embedding), dataset.graph, test
            )

        result = repeat_evaluation(run, num_runs=3, seed=0)
        assert len(result.runs) == 3
        assert result.std("AUC") >= 0.0


class TestDiskRoundtrip:
    def test_synthetic_dataset_survives_disk(self, dataset, tmp_path):
        """Write a generated dataset in the loader format, read it back,
        and verify the pipeline still runs on the loaded copy."""
        edges_path = tmp_path / "edges.txt"
        votes_path = tmp_path / "votes.txt"
        write_edge_list(dataset.graph, edges_path)
        write_action_log(dataset.log, votes_path)

        graph, log, _index = load_dataset(edges_path, votes_path)
        assert graph.num_edges == dataset.graph.num_edges
        assert log.num_actions == dataset.log.num_actions
        # Spontaneous share is a sensitive whole-pipeline statistic.
        assert spontaneous_share(graph, log) == pytest.approx(
            spontaneous_share(dataset.graph, dataset.log), abs=1e-9
        )

    def test_embedding_roundtrip_preserves_predictions(
        self, dataset, splits, tmp_path
    ):
        train, _tune, test = splits
        model = Inf2vecModel(
            Inf2vecConfig(dim=8, epochs=2, context=ContextConfig(length=8)),
            seed=0,
        ).fit(dataset.graph, train)
        path = tmp_path / "emb.npz"
        model.embedding.save(path)

        from repro.core.embeddings import InfluenceEmbedding

        loaded = InfluenceEmbedding.load(path)
        a = evaluate_activation(
            EmbeddingPredictor(model.embedding), dataset.graph, test
        )
        b = evaluate_activation(EmbeddingPredictor(loaded), dataset.graph, test)
        assert a.auc == b.auc
        assert a.map == b.map
