"""CLI contract: exit codes, text/JSON output schema, baseline flags."""

import json
import subprocess

import pytest

from repro.analysis import ALL_PROJECT_RULES, ALL_RULES, load_baseline
from repro.analysis.cli import main

CLEAN = "x = 1\n"
VIOLATION = "import numpy as np\nx = np.random.rand()\n"


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """A scannable package dir; cwd pinned so no repo baseline leaks in."""
    monkeypatch.chdir(tmp_path)
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    return pkg


def run_cli(*argv):
    return main(list(argv))


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree):
        (tree / "ok.py").write_text(CLEAN)
        assert run_cli(str(tree), "--no-baseline") == 0

    def test_findings_exit_nonzero(self, tree):
        (tree / "bad.py").write_text(VIOLATION)
        assert run_cli(str(tree), "--no-baseline") == 1

    def test_usage_error_exits_two(self, tree):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(str(tree), "--rules", "no-such-rule")
        assert excinfo.value.code == 2

    def test_missing_root_exits_two(self, tree):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(str(tree / "missing"))
        assert excinfo.value.code == 2


class TestTextOutput:
    def test_findings_printed_with_file_line_rule(self, tree, capsys):
        (tree / "bad.py").write_text(VIOLATION)
        run_cli(str(tree), "--no-baseline")
        out = capsys.readouterr()
        assert f"{tree.as_posix()}/bad.py:2: no-global-rng:" in out.out
        assert "1 finding(s)" in out.err

    def test_list_rules_shows_every_id(self, capsys):
        assert run_cli("--list-rules") == 0
        out = capsys.readouterr().out
        for rule_class in (*ALL_RULES, *ALL_PROJECT_RULES):
            assert rule_class.rule_id in out


class TestJsonOutput:
    def test_schema(self, tree, capsys):
        (tree / "bad.py").write_text(VIOLATION)
        code = run_cli(str(tree), "--no-baseline", "--format", "json")
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["roots"] == [tree.as_posix()]
        assert payload["rules"] == [r.rule_id for r in ALL_RULES]
        assert payload["project_rules"] == [
            r.rule_id for r in ALL_PROJECT_RULES
        ]
        assert payload["count"] == 1
        assert payload["baselined"] == 0
        assert isinstance(payload["elapsed_s"], float)
        (finding,) = payload["findings"]
        assert finding == {
            "root": tree.as_posix(),
            "path": "bad.py",
            "line": 2,
            "rule": "no-global-rng",
            "message": finding["message"],
        }
        assert "global NumPy RNG" in finding["message"]

    def test_clean_tree_schema(self, tree, capsys):
        (tree / "ok.py").write_text(CLEAN)
        assert run_cli(str(tree), "--no-baseline", "--format", "json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["findings"] == []


class TestRuleSelection:
    def test_rules_flag_restricts_the_suite(self, tree, capsys):
        (tree / "bad.py").write_text(VIOLATION + "print('x')\n")
        assert run_cli(str(tree), "--no-baseline", "--rules", "no-print") == 1
        payload_lines = capsys.readouterr().out.splitlines()
        assert len(payload_lines) == 1
        assert "no-print" in payload_lines[0]

    def test_project_rule_id_selects_the_project_pass(self, tree, capsys):
        # dead-export is a project rule: it needs the import graph, and
        # selecting it alone must not run any per-file rule.
        (tree / "impl.py").write_text(
            VIOLATION + "__all__ = ['unused']\ndef unused():\n    return 1\n"
        )
        assert (
            run_cli(str(tree), "--no-baseline", "--rules", "dead-export") == 1
        )
        out_lines = capsys.readouterr().out.splitlines()
        assert len(out_lines) == 1
        assert "dead-export" in out_lines[0] and "'unused'" in out_lines[0]


class TestGraphDump:
    def test_graph_flag_dumps_modules_and_exits_zero(self, tree, capsys):
        (tree / "__init__.py").write_text("from pkg.mod import f\n")
        (tree / "mod.py").write_text("def f():\n    return 1\n")
        assert run_cli(str(tree), "--graph") == 0
        payload = json.loads(capsys.readouterr().out)
        modules = payload[tree.as_posix()]["modules"]
        assert set(modules) == {"pkg", "pkg.mod"}
        (edge,) = modules["pkg"]["imports"]
        assert (edge["module"], edge["name"]) == ("pkg.mod", "f")


class TestChangedOnly:
    @pytest.fixture
    def repo(self, tree):
        def git(*argv):
            subprocess.run(
                ["git", *argv],
                cwd=tree.parent,
                check=True,
                capture_output=True,
            )

        git("init", "-q")
        git("config", "user.email", "t@example.com")
        git("config", "user.name", "t")
        (tree / "old.py").write_text(VIOLATION)
        git("add", ".")
        git("commit", "-qm", "seed")
        return git

    def test_only_changed_files_are_checked(self, tree, repo, capsys):
        # old.py violates but is unchanged; the new file is clean.
        (tree / "new.py").write_text(CLEAN)
        assert run_cli(str(tree), "--no-baseline", "--changed-only") == 0
        capsys.readouterr()

        # A dirty violating file is reported again.
        (tree / "new.py").write_text(VIOLATION)
        assert run_cli(str(tree), "--no-baseline", "--changed-only") == 1
        assert "new.py" in capsys.readouterr().out

    def test_bad_base_ref_is_a_usage_error(self, tree, repo):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(str(tree), "--changed-only", "--base-ref", "no-such-ref")
        assert excinfo.value.code == 2


class TestBaselineFlags:
    def test_write_baseline_then_clean_run(self, tree, capsys):
        (tree / "bad.py").write_text(VIOLATION)
        baseline = tree.parent / "baseline.json"
        assert (
            run_cli(str(tree), "--baseline", str(baseline), "--write-baseline")
            == 0
        )
        assert len(load_baseline(baseline)) == 1
        capsys.readouterr()

        # Grandfathered finding no longer fails the run...
        assert run_cli(str(tree), "--baseline", str(baseline)) == 0
        assert "(1 baselined)" in capsys.readouterr().err

        # ...but --no-baseline still shows it.
        assert run_cli(str(tree), "--no-baseline") == 1

    def test_auto_discovery_walks_up(self, tree, capsys):
        (tree / "bad.py").write_text(VIOLATION)
        baseline = tree.parent / ".analysis-baseline.json"
        run_cli(str(tree), "--baseline", str(baseline), "--write-baseline")
        capsys.readouterr()
        # No --baseline flag: the file is discovered above the root.
        assert run_cli(str(tree)) == 0
