"""Framework behaviour: suppressions, baseline round trip, parse cache."""

import textwrap

import pytest

from repro.analysis import (
    PARSE_ERROR_RULE,
    Finding,
    analyze_source,
    baseline_key,
    default_rules,
    discover_baseline,
    get_rule,
    iter_python_files,
    load_baseline,
    parse_source,
    run_analysis,
    save_baseline,
)
from repro.analysis.core import _PARSE_CACHE
from repro.errors import ReproError

VIOLATION = "import numpy as np\nx = np.random.rand()\n"


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_named_suppression_silences_that_rule(self):
        source = (
            "import numpy as np\n"
            "x = np.random.rand()  # lint: disable=no-global-rng\n"
        )
        assert analyze_source(source, default_rules()) == []

    def test_suppression_of_other_rule_does_not_silence(self):
        source = (
            "import numpy as np\n"
            "x = np.random.rand()  # lint: disable=no-print\n"
        )
        findings = analyze_source(source, default_rules())
        assert [f.rule_id for f in findings] == ["no-global-rng"]

    def test_bare_disable_silences_all_rules(self):
        source = "print(open('x', 'w'))  # lint: disable\n"
        assert analyze_source(source, default_rules()) == []

    def test_comma_separated_rule_list(self):
        source = (
            "print(open('x', 'w'))  "
            "# lint: disable=no-print, atomic-write-only\n"
        )
        assert analyze_source(source, default_rules()) == []

    def test_suppression_only_covers_its_line(self):
        source = (
            "import numpy as np\n"
            "y = np.random.rand()  # lint: disable=no-global-rng\n"
            "z = np.random.rand()\n"
        )
        findings = analyze_source(source, default_rules())
        assert [f.line for f in findings] == [3]

    def test_suppression_covers_the_whole_statement(self):
        # The comment sits on the first line of a multi-line call; the
        # violation node is reported on a later line of the same
        # statement and must still be silenced.
        source = (
            "import numpy as np\n"
            "x = np.mean(  # lint: disable=no-global-rng\n"
            "    np.random.rand(\n"
            "        3,\n"
            "    )\n"
            ")\n"
        )
        assert analyze_source(source, default_rules()) == []

    def test_comment_on_inner_line_covers_the_statement_too(self):
        source = (
            "import numpy as np\n"
            "x = np.mean(\n"
            "    np.random.rand(3),  # lint: disable=no-global-rng\n"
            ")\n"
        )
        assert analyze_source(source, default_rules()) == []

    def test_statement_scope_does_not_leak_to_siblings(self):
        source = (
            "import numpy as np\n"
            "x = np.random.rand()  # lint: disable=no-global-rng\n"
            "y = np.random.rand()\n"
        )
        findings = analyze_source(source, default_rules())
        assert [f.line for f in findings] == [3]

    def test_disable_comment_inside_string_is_inert(self):
        source = (
            'text = "lint: disable=no-global-rng"\n'
            "import numpy as np\n"
            "x = np.random.rand()\n"
        )
        parsed = parse_source(source)
        assert parsed.suppressions == {}
        findings = analyze_source(source, default_rules())
        assert [f.rule_id for f in findings] == ["no-global-rng"]


# ---------------------------------------------------------------------------
# Baseline round trip
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_filters_grandfathered_findings(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "old.py").write_text(VIOLATION)
        rules = [get_rule("no-global-rng")]

        findings = run_analysis(pkg, rules)
        assert len(findings) == 1

        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, findings)
        baseline = load_baseline(baseline_file)
        assert baseline == {baseline_key(findings[0])}

        assert run_analysis(pkg, rules, baseline=baseline) == []

    def test_baseline_survives_line_drift(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "old.py").write_text(VIOLATION)
        rules = [get_rule("no-global-rng")]
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, run_analysis(pkg, rules))

        # Code added above the grandfathered site moves its line.
        (pkg / "old.py").write_text("import os\n\n" + VIOLATION)
        baseline = load_baseline(baseline_file)
        assert run_analysis(pkg, rules, baseline=baseline) == []

    def test_new_violation_is_not_masked_by_baseline(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "old.py").write_text(VIOLATION)
        rules = [get_rule("no-global-rng")]
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, run_analysis(pkg, rules))

        (pkg / "old.py").write_text(VIOLATION + "y = np.random.choice([1])\n")
        baseline = load_baseline(baseline_file)
        survivors = run_analysis(pkg, rules, baseline=baseline)
        assert len(survivors) == 1
        assert "choice" in survivors[0].message

    def test_corrupt_baseline_raises_repro_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="unreadable baseline"):
            load_baseline(bad)

    def test_wrong_version_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ReproError, match="version"):
            load_baseline(bad)

    def test_discover_walks_up_from_root(self, tmp_path):
        (tmp_path / ".analysis-baseline.json").write_text(
            '{"version": 1, "entries": []}'
        )
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        assert discover_baseline(nested) == tmp_path / ".analysis-baseline.json"


# ---------------------------------------------------------------------------
# Parse cache and file iteration
# ---------------------------------------------------------------------------


class TestParseCacheAndIteration:
    def test_cache_hit_on_unchanged_file(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        run_analysis(tmp_path, default_rules())
        key = str(target.resolve())
        assert key in _PARSE_CACHE
        first = _PARSE_CACHE[key][2]
        run_analysis(tmp_path, default_rules())
        assert _PARSE_CACHE[key][2] is first

    def test_cache_invalidated_on_change(self, tmp_path):
        import os

        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        run_analysis(tmp_path, default_rules())
        key = str(target.resolve())
        first = _PARSE_CACHE[key][2]
        target.write_text("x = 2  # changed\n")
        os.utime(target, ns=(1, 1))  # force a distinct mtime
        run_analysis(tmp_path, default_rules())
        assert _PARSE_CACHE[key][2] is not first

    def test_rewrite_within_one_mtime_tick_is_detected(self, tmp_path):
        # Coarse filesystem timestamps can leave mtime unchanged across
        # a rewrite; the (mtime_ns, size) key must still invalidate as
        # long as the size differs.
        import os

        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        run_analysis(tmp_path, default_rules())
        key = str(target.resolve())
        first = _PARSE_CACHE[key][2]
        stat = target.stat()

        target.write_text("x = 1234\n")  # different size...
        os.utime(target, ns=(stat.st_atime_ns, stat.st_mtime_ns))  # same tick
        assert target.stat().st_mtime_ns == stat.st_mtime_ns
        run_analysis(tmp_path, default_rules())
        assert _PARSE_CACHE[key][2] is not first
        assert _PARSE_CACHE[key][2].text == "x = 1234\n"

    def test_hidden_directories_are_skipped(self, tmp_path):
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "skipme.py").write_text(VIOLATION)
        (tmp_path / "seen.py").write_text("x = 1\n")
        files = list(iter_python_files(tmp_path))
        assert [p.name for p in files] == ["seen.py"]

    def test_findings_are_sorted_by_path_line_rule(self, tmp_path):
        (tmp_path / "b.py").write_text(VIOLATION)
        (tmp_path / "a.py").write_text("print('x')\nprint('y')\n")
        findings = run_analysis(tmp_path, default_rules())
        keys = [(f.path, f.line) for f in findings]
        assert keys == sorted(keys)


# ---------------------------------------------------------------------------
# Parse errors
# ---------------------------------------------------------------------------


class TestParseErrors:
    def test_syntax_error_becomes_parse_error_finding(self):
        findings = analyze_source("def broken(:\n", default_rules())
        assert [f.rule_id for f in findings] == [PARSE_ERROR_RULE]
        assert "does not parse" in findings[0].message

    def test_unparsable_file_does_not_abort_the_run(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        (tmp_path / "good.py").write_text(VIOLATION)
        findings = run_analysis(tmp_path, default_rules())
        assert {f.rule_id for f in findings} == {PARSE_ERROR_RULE, "no-global-rng"}


# ---------------------------------------------------------------------------
# Finding rendering
# ---------------------------------------------------------------------------


def test_finding_render_and_dict():
    finding = Finding(path="data/x.py", line=7, rule_id="r", message="m")
    assert finding.render() == "data/x.py:7: r: m"
    assert finding.render(prefix="src/repro") == "src/repro/data/x.py:7: r: m"
    assert finding.to_dict() == {
        "path": "data/x.py",
        "line": 7,
        "rule": "r",
        "message": "m",
    }


def test_analyze_source_matches_textwrap_fixture_style():
    source = textwrap.dedent(
        """
        import time

        def f():
            return time.time()
        """
    )
    findings = analyze_source(source, [get_rule("no-wallclock-timing")])
    assert [f.line for f in findings] == [5]
