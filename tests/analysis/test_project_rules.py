"""Fixture mini-projects for every project rule: positive + negative."""

from __future__ import annotations

from repro.analysis import analyze_project
from repro.analysis.rules import (
    DeadExportRule,
    EinsumOptimizeRule,
    ExplicitDtypeRule,
    HogwildSafetyRule,
    SetIterationOrderRule,
    TelemetryContractRule,
)

SHARED_DEF = (
    "__all__ = ['SharedEmbedding']\n"
    "class SharedEmbedding:\n"
    "    pass\n"
)


def _ids(findings):
    return [f.rule_id for f in findings]


class TestHogwildSafety:
    def run(self, worker_source, extra=None):
        sources = {
            "parallel/shared.py": SHARED_DEF,
            "parallel/worker.py": (
                "from parallel.shared import SharedEmbedding\n" + worker_source
            ),
        }
        if extra:
            sources.update(extra)
        return analyze_project(sources, [HogwildSafetyRule()])

    def test_sanctioned_idioms_are_clean(self):
        findings = self.run(
            "import numpy as np\n"
            "def step(emb, users, grad):\n"
            "    np.add.at(emb.source, users, grad)\n"
            "    emb.source[users] += grad\n"
            "    emb.source_bias += np.bincount(users, minlength=3)\n"
        )
        assert findings == []

    def test_plain_attribute_assign_is_flagged(self):
        findings = self.run(
            "def step(emb, grad):\n"
            "    emb.source = emb.source + grad\n"
        )
        assert _ids(findings) == ["hogwild-safety"]
        assert "rebinds shared buffer" in findings[0].message

    def test_alias_rebinding_is_flagged(self):
        findings = self.run(
            "def step(emb, grad):\n"
            "    rows = emb.source\n"
            "    rows = rows * 2\n"
        )
        assert _ids(findings) == ["hogwild-safety"]
        assert "detaching" in findings[0].message

    def test_alias_inplace_write_is_clean(self):
        findings = self.run(
            "def step(emb, users, grad):\n"
            "    rows = emb.source\n"
            "    rows[users] += grad\n"
        )
        assert findings == []

    def test_lock_constructions_and_acquire_flagged(self):
        findings = self.run(
            "import threading\n"
            "from threading import RLock\n"
            "def guard(existing):\n"
            "    lock = threading.Lock()\n"
            "    other = RLock()\n"
            "    existing.acquire()\n"
        )
        assert _ids(findings) == ["hogwild-safety"] * 3

    def test_modules_outside_scope_are_ignored(self):
        findings = self.run(
            "def ok(emb):\n    emb.target[0] += 1\n",
            extra={
                # Same spelling, but this module never imports the
                # shared class, so plain assignment is fine here.
                "elsewhere.py": (
                    "def reset(obj):\n    obj.source = None\n"
                    "import threading\nLOCK = threading.Lock()\n"
                ),
            },
        )
        assert findings == []

    def test_defining_module_may_bind_buffers(self):
        findings = analyze_project(
            {
                "parallel/shared.py": (
                    "__all__ = ['SharedEmbedding']\n"
                    "from parallel.shared import SharedEmbedding\n"
                    "class SharedEmbedding:\n"
                    "    def attach(self, view):\n"
                    "        self.source = view\n"
                ),
            },
            [HogwildSafetyRule()],
        )
        assert findings == []


class TestEinsumOptimize:
    def run(self, body, module="serve/engine.py"):
        return analyze_project(
            {module: "import numpy as np\n" + body}, [EinsumOptimizeRule()]
        )

    def test_missing_optimize_flagged(self):
        findings = self.run("def f(a, b):\n    return np.einsum('ij,kj->ik', a, b)\n")
        assert _ids(findings) == ["einsum-optimize"]

    def test_non_false_optimize_flagged(self):
        findings = self.run(
            "def f(a, b):\n"
            "    return np.einsum('ij,kj->ik', a, b, optimize=True)\n"
        )
        assert _ids(findings) == ["einsum-optimize"]
        assert "literal optimize=False" in findings[0].message

    def test_optimize_false_clean(self):
        findings = self.run(
            "def f(a, b):\n"
            "    return np.einsum('ij,kj->ik', a, b, optimize=False)\n"
        )
        assert findings == []

    def test_outside_scope_ignored(self):
        findings = self.run(
            "def f(a, b):\n    return np.einsum('ij,kj->ik', a, b)\n",
            module="training/kernels.py",
        )
        assert findings == []


class TestExplicitDtype:
    def run(self, body, module="sketch/pool.py"):
        return analyze_project(
            {module: "import numpy as np\n" + body}, [ExplicitDtypeRule()]
        )

    def test_missing_dtype_flagged(self):
        findings = self.run("def f(n):\n    return np.arange(n)\n")
        assert _ids(findings) == ["explicit-dtype"]
        assert "np.arange" in findings[0].message

    def test_explicit_dtype_clean(self):
        findings = self.run(
            "def f(n):\n    return np.zeros(n, dtype=np.float64)\n"
        )
        assert findings == []

    def test_non_constructor_and_other_modules_ignored(self):
        clean = self.run("def f(x):\n    return np.asarray(x)\n")
        assert clean == []
        outside = self.run(
            "def f(n):\n    return np.empty(n)\n", module="viz/plots.py"
        )
        assert outside == []


class TestSetIterationOrder:
    def run(self, body, module="core/contexts.py"):
        return analyze_project({module: body}, [SetIterationOrderRule()])

    def test_direct_iteration_flagged(self):
        findings = self.run(
            "def f(xs):\n"
            "    for x in set(xs):\n"
            "        yield x\n"
        )
        assert _ids(findings) == ["set-iteration-order"]

    def test_list_of_set_flagged(self):
        findings = self.run("def f(xs):\n    return list(set(xs))\n")
        assert _ids(findings) == ["set-iteration-order"]

    def test_comprehension_over_literal_flagged(self):
        findings = self.run("def f():\n    return [x for x in {1, 2, 3}]\n")
        assert _ids(findings) == ["set-iteration-order"]

    def test_sorted_wrapping_is_clean(self):
        findings = self.run(
            "def f(xs):\n"
            "    for x in sorted(set(xs)):\n"
            "        yield x\n"
            "    return sorted({x for x in xs})\n"
        )
        assert findings == []

    def test_outside_scope_ignored(self):
        findings = self.run(
            "def f(xs):\n    return list(set(xs))\n", module="viz/colors.py"
        )
        assert findings == []


CATALOG = (
    "METRIC_CATALOG = (\n"
    "    MetricSpec('train.loss', 'gauge', ('epoch',), ''),\n"
    "    MetricSpec('diffusion.*.rounds', 'histogram', (), ''),\n"
    ")\n"
    "GATED_BENCH_LEAVES = {\n"
    "    'B.json': ('workloads.*.p50', 'fixed.leaf'),\n"
    "}\n"
)


class TestTelemetryContract:
    def run(self, user_source, catalog=CATALOG, policies=None):
        sources = {"catalog.py": catalog, "app.py": user_source}
        if policies is not None:
            sources["regress.py"] = policies
        return analyze_project(sources, [TelemetryContractRule()])

    def test_declared_site_with_declared_labels_clean(self):
        findings = self.run(
            "def f(metrics, loss):\n"
            "    metrics.gauge('train.loss', 'desc').set(loss, epoch=3)\n"
        )
        assert findings == []

    def test_undeclared_name_flagged(self):
        findings = self.run(
            "def f(metrics):\n"
            "    metrics.counter('train.losss', 'typo').inc()\n"
        )
        assert _ids(findings) == ["telemetry-contract"]
        assert "not declared" in findings[0].message

    def test_kind_mismatch_flagged(self):
        findings = self.run(
            "def f(metrics):\n"
            "    metrics.counter('train.loss', 'desc').inc()\n"
        )
        assert _ids(findings) == ["telemetry-contract"]
        assert "declared as a gauge" in findings[0].message

    def test_undeclared_label_flagged(self):
        findings = self.run(
            "def f(metrics, loss):\n"
            "    metrics.gauge('train.loss', 'desc').set(loss, worker=1)\n"
        )
        assert _ids(findings) == ["telemetry-contract"]
        assert "worker" in findings[0].message

    def test_fstring_family_matches_declaration(self):
        findings = self.run(
            "def f(metrics, model, rounds):\n"
            "    metrics.histogram(f'diffusion.{model}.rounds', (1,), 'd')"
            ".observe(rounds)\n"
        )
        assert findings == []

    def test_numpy_receiver_and_variable_names_skipped(self):
        findings = self.run(
            "import numpy as np\n"
            "def f(data, edges, metrics, name):\n"
            "    counts, edges = np.histogram(data, bins=edges)\n"
            "    metrics.counter(name, 'pass-through').inc()\n"
            "    return counts\n"
        )
        assert findings == []

    def test_missing_catalog_module_flagged(self):
        findings = analyze_project(
            {
                "app.py": (
                    "def f(metrics):\n"
                    "    metrics.counter('x.y', 'd').inc()\n"
                )
            },
            [TelemetryContractRule()],
        )
        assert _ids(findings) == ["telemetry-contract"]
        assert "no literal METRIC_CATALOG" in findings[0].message

    def test_live_gate_pattern_clean(self):
        findings = self.run(
            "x = 1\n",
            policies=(
                "DEFAULT_POLICIES = {\n"
                "    'B.json': (MetricPolicy('workloads.*.p50', 'lower', 0.75),),\n"
                "}\n"
            ),
        )
        assert findings == []

    def test_dead_gate_pattern_flagged(self):
        findings = self.run(
            "x = 1\n",
            policies=(
                "DEFAULT_POLICIES = {\n"
                "    'B.json': (MetricPolicy('wrkloads.*.p50', 'lower', 0.75),),\n"
                "}\n"
            ),
        )
        assert _ids(findings) == ["telemetry-contract"]
        assert "dead gate" in findings[0].message

    def test_unknown_report_file_flagged(self):
        findings = self.run(
            "x = 1\n",
            policies=(
                "DEFAULT_POLICIES = {\n"
                "    'OTHER.json': (MetricPolicy('a.*', 'lower', 0.5),),\n"
                "}\n"
            ),
        )
        assert _ids(findings) == ["telemetry-contract"]
        assert "declares no leaves" in findings[0].message


class TestDeadExport:
    SOURCES = {
        "pkg/__init__.py": (
            "from pkg.impl import Thing, helper\n"
            "__all__ = ['Thing', 'helper']\n"
        ),
        "pkg/impl.py": (
            "__all__ = ['Thing', 'helper']\n"
            "class Thing:\n    pass\n"
            "def helper():\n    return Thing()\n"
        ),
    }

    def test_unimported_exports_flagged_at_origin_and_reexport(self):
        findings = analyze_project(dict(self.SOURCES), [DeadExportRule()])
        flagged = {(f.path, f.message.split("'")[1]) for f in findings}
        assert ("pkg/impl.py", "Thing") in flagged
        assert ("pkg/__init__.py", "Thing") in flagged

    def test_test_import_through_reexport_counts(self):
        findings = analyze_project(
            dict(self.SOURCES),
            [DeadExportRule()],
            reference_sources={
                "test_pkg.py": "from pkg import Thing, helper\n"
            },
        )
        assert findings == []

    def test_internal_module_import_counts(self):
        sources = dict(self.SOURCES)
        sources["consumer.py"] = (
            "from pkg.impl import Thing, helper\n"
            "both = (Thing, helper)\n"
        )
        findings = analyze_project(sources, [DeadExportRule()])
        assert findings == []

    def test_attribute_use_counts(self):
        sources = dict(self.SOURCES)
        sources["consumer.py"] = (
            "import pkg.impl\n"
            "both = (pkg.impl.Thing, pkg.impl.helper)\n"
        )
        findings = analyze_project(sources, [DeadExportRule()])
        assert findings == []

    def test_submodule_exports_are_structural(self):
        findings = analyze_project(
            {
                "pkg/__init__.py": "from pkg import impl\n__all__ = ['impl']\n",
                "pkg/impl.py": "x = 1\n",
            },
            [DeadExportRule()],
        )
        assert findings == []
