"""Tests for the repro.analysis static-analysis framework."""
