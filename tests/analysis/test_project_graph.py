"""Pass-1 engine tests: graph construction, origins, usage, runner."""

from __future__ import annotations

import ast

import pytest

from repro.analysis import (
    Finding,
    ProjectGraph,
    analyze_project,
    build_project_graph,
    build_project_graph_from_sources,
    run_project_rules,
)
from repro.analysis.project import ProjectAstRule, is_project_rule


class NamedRule(ProjectAstRule):
    """Flags every module whose name contains 'bad' (test scaffolding)."""

    rule_id = "named"
    description = "test rule"

    def check_project(self, graph):
        for info in graph.checked_modules():
            if "bad" in info.name:
                yield self.finding(info, info.parsed.tree.body[0], "flagged")


class TestModuleNaming:
    def test_plain_tree_module_names(self):
        graph = build_project_graph_from_sources(
            {
                "pkg/__init__.py": "__all__ = []\n",
                "pkg/mod.py": "x = 1\n",
                "top.py": "y = 2\n",
            }
        )
        assert set(graph.modules) == {"pkg", "pkg.mod", "top"}
        assert graph.module("pkg").is_package
        assert not graph.module("top").is_package

    def test_package_root_gets_prefix(self, tmp_path):
        root = tmp_path / "myproj"
        root.mkdir()
        (root / "__init__.py").write_text("__all__ = []\n")
        sub = root / "sub"
        sub.mkdir()
        (sub / "__init__.py").write_text("__all__ = []\n")
        (sub / "leaf.py").write_text("z = 3\n")
        graph = build_project_graph(root)
        assert set(graph.modules) == {"myproj", "myproj.sub", "myproj.sub.leaf"}
        assert graph.package == "myproj"


class TestSymbolTable:
    def test_exports_defs_and_imports(self):
        graph = build_project_graph_from_sources(
            {
                "a.py": (
                    "import json\n"
                    "from b import helper\n"
                    "__all__ = ['main']\n"
                    "CONST = 1\n"
                    "def main():\n"
                    "    from b import lazy  # function-level import\n"
                    "    return helper() + lazy()\n"
                ),
                "b.py": (
                    "__all__ = ['helper', 'lazy']\n"
                    "def helper():\n    return 1\n"
                    "def lazy():\n    return 2\n"
                ),
            }
        )
        info = graph.module("a")
        assert info.exports == ("main",)
        assert {"CONST", "main"} <= set(info.top_level_defs)
        bound = {(edge.module, edge.name) for edge in info.imports}
        # Lazy function-level imports are collected too.
        assert ("b", "helper") in bound and ("b", "lazy") in bound
        assert info.imports_symbol("b.helper")
        assert not info.imports_symbol("b.missing")

    def test_non_literal_all_is_none(self):
        graph = build_project_graph_from_sources(
            {"a.py": "names = ['x']\n__all__ = names\n"}
        )
        assert graph.module("a").exports is None

    def test_relative_imports_resolve_against_package(self):
        graph = build_project_graph_from_sources(
            {
                "pkg/__init__.py": "__all__ = []\n",
                "pkg/a.py": "from . import b\nfrom .b import f\n",
                "pkg/b.py": "def f():\n    return 0\n",
            }
        )
        edges = {
            (edge.module, edge.name)
            for edge in graph.module("pkg.a").imports
        }
        assert ("pkg", "b") in edges and ("pkg.b", "f") in edges

    def test_attribute_uses_resolve_to_deepest_module(self):
        graph = build_project_graph_from_sources(
            {
                "pkg/__init__.py": "__all__ = []\n",
                "pkg/util.py": "def f():\n    return 0\n",
                "user.py": "import pkg.util\nvalue = pkg.util.f()\n",
            }
        )
        assert ("pkg.util", "f") in graph.module("user").attribute_uses


class TestOrigins:
    SOURCES = {
        "pkg/__init__.py": "from pkg.impl import Thing\n__all__ = ['Thing']\n",
        "pkg/impl.py": "__all__ = ['Thing']\nclass Thing:\n    pass\n",
    }

    def test_reexport_chain_collapses(self):
        graph = build_project_graph_from_sources(self.SOURCES)
        assert graph.export_origin("pkg", "Thing") == ("pkg.impl", "Thing")
        assert graph.export_origin("pkg.impl", "Thing") == ("pkg.impl", "Thing")

    def test_import_through_any_layer_marks_origin_used(self):
        graph = build_project_graph_from_sources(
            self.SOURCES,
            reference_sources={"test_thing.py": "from pkg import Thing\n"},
        )
        assert ("pkg.impl", "Thing") in graph.used_origins()

    def test_reexport_alone_is_not_usage(self):
        graph = build_project_graph_from_sources(self.SOURCES)
        # pkg imports Thing but only to re-export it (it is in pkg's
        # __all__), so the origin stays unused.
        assert ("pkg.impl", "Thing") not in graph.used_origins()

    def test_submodule_binding_resolves_to_module(self):
        graph = build_project_graph_from_sources(
            {
                "pkg/__init__.py": "from pkg import impl\n__all__ = ['impl']\n",
                "pkg/impl.py": "x = 1\n",
            }
        )
        assert graph.export_origin("pkg", "impl") == ("pkg.impl", "")


class TestRunner:
    def test_findings_sorted_and_suppressed(self):
        findings = analyze_project(
            {
                "bad_one.py": "x = 1\n",
                "bad_two.py": "y = 2  # lint: disable=named\n",
            },
            [NamedRule()],
        )
        assert [f.path for f in findings] == ["bad_one.py"]

    def test_rule_filter_via_protocol(self):
        assert is_project_rule(NamedRule())
        assert not is_project_rule(object())

    def test_to_dict_shape(self):
        graph = build_project_graph_from_sources(
            {"a.py": "__all__ = ['x']\nx = 1\n"},
            reference_sources={"t.py": "import a\n"},
        )
        payload = graph.to_dict()
        assert payload["modules"]["a"]["exports"] == ["x"]
        assert payload["references"] == ["t.py"]
        assert payload["modules"]["a"]["path"] == "a.py"

    def test_real_tree_builds_and_resolves(self, repo_src):
        graph = build_project_graph(repo_src)
        assert isinstance(graph, ProjectGraph)
        assert graph.package == "repro"
        assert graph.export_origin("repro", "Inf2vecModel") == (
            "repro.core.inf2vec",
            "Inf2vecModel",
        )


@pytest.fixture
def repo_src():
    from pathlib import Path

    root = Path(__file__).resolve().parents[2] / "src" / "repro"
    if not root.is_dir():
        pytest.skip("src/repro not present")
    return root


class TestProjectFindingContract:
    def test_finding_fields(self):
        graph = build_project_graph_from_sources({"bad.py": "x = 1\n"})
        findings = run_project_rules(graph, [NamedRule()])
        assert findings == [
            Finding(path="bad.py", line=1, rule_id="named", message="flagged")
        ]

    def test_project_rule_base_requires_override(self):
        graph = build_project_graph_from_sources({"a.py": "x = 1\n"})
        with pytest.raises(NotImplementedError):
            list(ProjectAstRule().check_project(graph))

    def test_finding_defaults_to_line_one_without_node(self):
        graph = build_project_graph_from_sources({"a.py": "x = 1\n"})
        info = graph.module("a")
        rule = ProjectAstRule()
        rule.rule_id = "t"
        finding = rule.finding(info, None, "msg")
        assert (finding.line, finding.path) == (1, "a.py")
        located = rule.finding(info, info.parsed.tree.body[0], "msg")
        assert isinstance(info.parsed.tree.body[0], ast.stmt)
        assert located.line == 1
