"""Per-rule fixtures: every rule has passing and failing snippets.

All fixtures are parsed from strings via ``analyze_source`` — never
from repo files — so each case documents exactly the construct it
exercises.
"""

import textwrap

import pytest

from repro.analysis import ALL_RULES, analyze_source, get_rule
from repro.analysis.rules import (
    AtomicWriteOnlyRule,
    NoBareExceptRule,
    NoGlobalRngRule,
    NoMutableDefaultArgsRule,
    NoPrintRule,
    NoWallclockTimingRule,
    PinnedApiRule,
)


def check(rule, source, relative="mod.py"):
    """Findings from one rule over a dedented snippet."""
    return analyze_source(textwrap.dedent(source), [rule], relative=relative)


# ---------------------------------------------------------------------------
# no-global-rng
# ---------------------------------------------------------------------------


class TestNoGlobalRng:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import numpy as np\nx = np.random.rand(3)\n",
            "import numpy as np\nnp.random.seed(0)\n",
            "import numpy.random as npr\nx = npr.choice([1, 2])\n",
            "from numpy import random\nx = random.uniform()\n",
            "from numpy.random import rand\n",
            "import random\nx = random.random()\n",
            "import random as rnd\nx = rnd.randint(0, 3)\n",
            "from random import shuffle\n",
        ],
    )
    def test_flags_global_rng(self, snippet):
        findings = check(NoGlobalRngRule(), snippet)
        assert findings, snippet
        assert all(f.rule_id == "no-global-rng" for f in findings)

    @pytest.mark.parametrize(
        "snippet",
        [
            "import numpy as np\nrng = np.random.default_rng(7)\n",
            "import numpy as np\n\ndef f(rng: np.random.Generator):\n"
            "    return rng.integers(5)\n",
            "import numpy as np\nss = np.random.SeedSequence(1)\n",
            "from numpy.random import default_rng\nrng = default_rng(0)\n",
            # A local object that happens to be named ``random``.
            "random = make_sampler()\nx = random.random()\n",
        ],
    )
    def test_allows_explicit_generators(self, snippet):
        assert check(NoGlobalRngRule(), snippet) == []

    def test_reports_file_and_line(self):
        findings = check(
            NoGlobalRngRule(), "import numpy as np\n\nx = np.random.rand()\n"
        )
        assert [(f.path, f.line) for f in findings] == [("mod.py", 3)]


# ---------------------------------------------------------------------------
# no-print
# ---------------------------------------------------------------------------


class TestNoPrint:
    def test_flags_bare_print(self):
        findings = check(NoPrintRule(), "print('hello')\n")
        assert [f.rule_id for f in findings] == ["no-print"]

    def test_flags_print_inside_helper(self):
        findings = check(
            NoPrintRule(),
            """
            def helper():
                print("nope")
            """,
        )
        assert len(findings) == 1

    def test_allows_rendering_surfaces(self):
        assert check(NoPrintRule(), "print('ok')\n", relative="cli.py") == []
        assert check(NoPrintRule(), "print('ok')\n", relative="viz/ascii.py") == []
        assert (
            check(NoPrintRule(), "print('ok')\n", relative="analysis/cli.py") == []
        )

    def test_allows_experiment_renderers_only(self):
        source = """
        def print_table():
            print("| a | b |")

        def main():
            print("rendered")

        def compute():
            print("leaked")
        """
        findings = check(NoPrintRule(), source, relative="experiments/table9.py")
        assert [f.line for f in findings] == [9]

    def test_identifier_containing_print_is_fine(self):
        assert check(NoPrintRule(), "x = config_fingerprint(1)\n") == []


# ---------------------------------------------------------------------------
# atomic-write-only
# ---------------------------------------------------------------------------


class TestAtomicWriteOnly:
    @pytest.mark.parametrize(
        "snippet",
        [
            "handle = open('out.txt', 'w')\n",
            "handle = open('out.bin', mode='wb')\n",
            "from pathlib import Path\nPath('x').open('a')\n",
            "import numpy as np\nnp.save('arr.npy', arr)\n",
            "import numpy as np\nnp.savez_compressed('arr.npz', a=arr)\n",
            "import json\n\ndef f(fh):\n    json.dump({}, fh)\n",
            "import pickle\n\ndef f(fh):\n    pickle.dump({}, fh)\n",
            "from pathlib import Path\nPath('x').write_text('data')\n",
            "arr.tofile('raw.bin')\n",
        ],
    )
    def test_flags_raw_writes(self, snippet):
        findings = check(AtomicWriteOnlyRule(), snippet)
        assert findings, snippet
        assert all(f.rule_id == "atomic-write-only" for f in findings)

    @pytest.mark.parametrize(
        "snippet",
        [
            "handle = open('in.txt', 'r')\n",
            "handle = open('in.txt')\n",
            "import json\ntext = json.dumps({})\n",
            # The sanctioned pattern: writes inside atomic_output.
            """
            import numpy as np
            from repro.ckpt.atomic import atomic_output

            def save(path, arr):
                with atomic_output(path) as tmp:
                    np.savez_compressed(tmp, arr=arr)
            """,
            """
            from repro.ckpt.atomic import atomic_output

            def save(path, rows):
                with atomic_output(path) as tmp:
                    with open(tmp, "w", encoding="utf-8") as handle:
                        handle.writelines(rows)
            """,
            # os.open with flag constants is not a mode-string write.
            "import os\nfd = os.open('x', os.O_RDONLY)\n",
        ],
    )
    def test_allows_reads_and_atomic_blocks(self, snippet):
        assert check(AtomicWriteOnlyRule(), snippet) == []

    def test_primitive_module_is_exempt(self):
        findings = check(
            AtomicWriteOnlyRule(),
            "def raw(path, data):\n    open(path, 'w').write(data)\n",
            relative="ckpt/atomic.py",
        )
        assert findings == []

    def test_write_after_atomic_block_closes_is_flagged(self):
        source = """
        from repro.ckpt.atomic import atomic_output

        def f(path):
            with atomic_output(path) as tmp:
                pass
            open(path, "w")
        """
        findings = check(AtomicWriteOnlyRule(), source)
        assert [f.line for f in findings] == [7]


# ---------------------------------------------------------------------------
# no-wallclock-timing
# ---------------------------------------------------------------------------


class TestNoWallclockTiming:
    def test_flags_time_time(self):
        findings = check(
            NoWallclockTimingRule(), "import time\nstart = time.time()\n"
        )
        assert [f.rule_id for f in findings] == ["no-wallclock-timing"]

    def test_flags_from_import_spelling(self):
        findings = check(
            NoWallclockTimingRule(), "from time import time\nstart = time()\n"
        )
        assert len(findings) == 1

    def test_allows_perf_counter(self):
        assert (
            check(
                NoWallclockTimingRule(),
                "import time\nstart = time.perf_counter()\n",
            )
            == []
        )

    def test_suppression_comment_allows_unix_timestamps(self):
        source = (
            "import time\n"
            "stamp = time.time()  # lint: disable=no-wallclock-timing\n"
        )
        assert check(NoWallclockTimingRule(), source) == []


# ---------------------------------------------------------------------------
# pinned-api
# ---------------------------------------------------------------------------


class TestPinnedApi:
    def test_package_init_must_declare_all(self):
        findings = check(
            PinnedApiRule(), "from pkg.mod import thing\n", relative="pkg/__init__.py"
        )
        assert [f.rule_id for f in findings] == ["pinned-api"]

    def test_stale_entry_is_flagged(self):
        source = "__all__ = ['gone']\n\ndef _private():\n    pass\n"
        findings = check(PinnedApiRule(), source)
        assert len(findings) == 1
        assert "never bound" in findings[0].message

    def test_public_def_missing_from_all_is_flagged(self):
        source = """
        __all__ = ["listed"]

        def listed():
            pass

        def unlisted():
            pass
        """
        findings = check(PinnedApiRule(), source)
        assert len(findings) == 1
        assert "'unlisted'" in findings[0].message

    def test_dynamic_all_is_flagged(self):
        findings = check(PinnedApiRule(), "__all__ = sorted(globals())\n")
        assert len(findings) == 1
        assert "literal" in findings[0].message

    def test_duplicate_entries_are_flagged(self):
        source = "__all__ = ['f', 'f']\n\ndef f():\n    pass\n"
        findings = check(PinnedApiRule(), source)
        assert any("duplicate" in f.message for f in findings)

    def test_accurate_all_passes(self):
        source = """
        from helpers import imported_thing

        __all__ = ["CONST", "Thing", "fn", "imported_thing"]

        CONST = 1

        class Thing:
            pass

        def fn():
            pass

        def _private():
            pass
        """
        assert check(PinnedApiRule(), source, relative="pkg/__init__.py") == []

    def test_non_init_without_all_is_out_of_scope(self):
        assert check(PinnedApiRule(), "def anything():\n    pass\n") == []


# ---------------------------------------------------------------------------
# hygiene rules
# ---------------------------------------------------------------------------


class TestHygiene:
    def test_bare_except_flagged(self):
        source = "try:\n    x = 1\nexcept:\n    pass\n"
        findings = check(NoBareExceptRule(), source)
        assert [f.rule_id for f in findings] == ["no-bare-except"]

    def test_typed_except_allowed(self):
        source = (
            "try:\n    x = 1\n"
            "except ValueError:\n    pass\n"
            "except BaseException:\n    raise\n"
        )
        assert check(NoBareExceptRule(), source) == []

    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "dict()", "list()", "[x for x in y]"]
    )
    def test_mutable_default_flagged(self, default):
        findings = check(
            NoMutableDefaultArgsRule(), f"def f(a, acc={default}):\n    pass\n"
        )
        assert [f.rule_id for f in findings] == ["no-mutable-default-args"]

    def test_kwonly_mutable_default_flagged(self):
        findings = check(
            NoMutableDefaultArgsRule(), "def f(*, acc=[]):\n    pass\n"
        )
        assert len(findings) == 1

    def test_immutable_defaults_allowed(self):
        source = "def f(a=None, b=1, c='x', d=(1, 2), e=frozenset()):\n    pass\n"
        assert check(NoMutableDefaultArgsRule(), source) == []


# ---------------------------------------------------------------------------
# Registry-wide invariants
# ---------------------------------------------------------------------------


def test_every_rule_has_id_description_and_check():
    for rule_class in ALL_RULES:
        assert rule_class.rule_id != "abstract"
        assert rule_class.description
        assert callable(rule_class().check)


def test_rule_ids_are_unique():
    ids = [rule_class.rule_id for rule_class in ALL_RULES]
    assert len(ids) == len(set(ids))


def test_get_rule_round_trips_every_id():
    for rule_class in ALL_RULES:
        assert type(get_rule(rule_class.rule_id)) is rule_class


def test_get_rule_unknown_id_raises():
    with pytest.raises(KeyError, match="unknown rule"):
        get_rule("no-such-rule")
