"""Hogwild trainer tests: sharding, determinism, resume, streaming.

The determinism contract under test (DESIGN.md §14):

* ``workers=1`` is bitwise-deterministic — rerunning the trainer, and
  crashing + resuming it, both land on identical parameters;
* ``workers>1`` runs train the same objective on the same sharded data
  but race on the shared pages, so only statistical agreement is
  promised — pinned here as a loss tolerance against the 1-worker run;
* resume refuses checkpoints from a different worker count and from
  the single-process engine (and vice versa).
"""

import dataclasses

import numpy as np
import pytest

from repro.ckpt import CheckpointManager
from repro.core.context import ContextGenerator
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.data.synthetic import SyntheticSocialDataset
from repro.errors import CheckpointError, TrainingError
from repro.parallel import HogwildTrainer, shard_episodes

#: Documented tolerance for cross-worker-count loss agreement: the
#: racing runs see identical data and hyper-parameters, so their final
#: mean losses may differ only by SGD-ordering noise.
CROSS_WORKER_LOSS_RTOL = 0.15

BASE = Inf2vecConfig(dim=8, epochs=4)


@pytest.fixture(scope="module")
def dataset():
    return SyntheticSocialDataset.digg_like(num_users=80, num_items=14, seed=5)


def _assert_identical(got, expected):
    assert got.loss_history == expected.loss_history
    np.testing.assert_array_equal(got.embedding.source, expected.embedding.source)
    np.testing.assert_array_equal(got.embedding.target, expected.embedding.target)
    np.testing.assert_array_equal(
        got.embedding.source_bias, expected.embedding.source_bias
    )
    np.testing.assert_array_equal(
        got.embedding.target_bias, expected.embedding.target_bias
    )


class TestShardEpisodes:
    def test_every_episode_lands_in_exactly_one_shard(self, dataset):
        shards = shard_episodes(dataset.log, 3)
        items = sorted(
            episode.item for shard in shards for episode in shard.episodes
        )
        assert items == sorted(e.item for e in dataset.log.episodes)

    def test_deterministic(self, dataset):
        first = shard_episodes(dataset.log, 4)
        second = shard_episodes(dataset.log, 4)
        for a, b in zip(first, second):
            assert [e.item for e in a.episodes] == [e.item for e in b.episodes]

    def test_balances_adoption_counts(self, dataset):
        shards = shard_episodes(dataset.log, 2)
        loads = [sum(len(e) for e in s.episodes) for s in shards]
        heaviest_episode = max(len(e) for e in dataset.log.episodes)
        assert abs(loads[0] - loads[1]) <= heaviest_episode

    def test_more_workers_than_episodes_leaves_empty_shards(self, dataset):
        many = len(dataset.log.episodes) + 3
        shards = shard_episodes(dataset.log, many)
        assert len(shards) == many
        assert sum(len(s.episodes) for s in shards) == len(dataset.log.episodes)

    def test_single_shard_preserves_order(self, dataset):
        (shard,) = shard_episodes(dataset.log, 1)
        assert [e.item for e in shard.episodes] == [
            e.item for e in dataset.log.episodes
        ]


class TestHogwildTraining:
    def test_single_worker_is_bitwise_deterministic(self, dataset):
        first = HogwildTrainer(BASE, workers=1, seed=11).fit(
            dataset.graph, dataset.log
        )
        second = HogwildTrainer(BASE, workers=1, seed=11).fit(
            dataset.graph, dataset.log
        )
        _assert_identical(second, first)

    def test_two_workers_train_and_agree_within_tolerance(self, dataset):
        one = HogwildTrainer(BASE, workers=1, seed=11).fit(
            dataset.graph, dataset.log
        )
        two = HogwildTrainer(BASE, workers=2, seed=11).fit(
            dataset.graph, dataset.log
        )
        assert len(two.loss_history) == len(one.loss_history)
        assert all(np.isfinite(two.loss_history))
        assert two.loss_history[-1] < two.loss_history[0]
        assert two.loss_history[-1] == pytest.approx(
            one.loss_history[-1], rel=CROSS_WORKER_LOSS_RTOL
        )

    def test_returned_embedding_is_private(self, dataset):
        trainer = HogwildTrainer(BASE, workers=2, seed=3)
        model = trainer.fit(dataset.graph, dataset.log)
        # The shared blocks are freed inside fit(); the surviving copy
        # must be an ordinary process-private array.
        model.embedding.source[0, 0] = 42.0
        assert model.embedding.source[0, 0] == 42.0

    def test_trainer_model_property(self, dataset):
        trainer = HogwildTrainer(BASE, workers=1, seed=1)
        with pytest.raises(TrainingError):
            trainer.model
        fitted = trainer.fit(dataset.graph, dataset.log)
        assert trainer.model is fitted

    def test_epoch_seconds_recorded(self, dataset):
        trainer = HogwildTrainer(BASE, workers=1, seed=1)
        trainer.fit(dataset.graph, dataset.log)
        assert len(trainer.epoch_seconds) == len(trainer.model.loss_history)
        assert all(s > 0 for s in trainer.epoch_seconds)


class TestStreaming:
    def test_chunked_generation_equals_materialised(self, dataset):
        config = Inf2vecConfig(dim=8, epochs=1)
        full = ContextGenerator(
            dataset.graph, config.context, seed=9
        ).generate(dataset.log)
        chunked = [
            context
            for chunk in ContextGenerator(
                dataset.graph, config.context, seed=9
            ).iter_context_chunks(dataset.log, 3)
            for context in chunk
        ]
        assert len(chunked) == len(full)
        for a, b in zip(chunked, full):
            assert a.user == b.user
            np.testing.assert_array_equal(a.users, b.users)

    def test_streaming_training_runs(self, dataset):
        trainer = HogwildTrainer(BASE, workers=2, seed=7, stream_chunk=4)
        model = trainer.fit(dataset.graph, dataset.log)
        assert len(model.loss_history) == BASE.epochs
        assert all(np.isfinite(model.loss_history))

    def test_streaming_requires_uniform_negatives(self):
        config = dataclasses.replace(BASE, negative_distribution="unigram")
        with pytest.raises(TrainingError):
            HogwildTrainer(config, workers=2, seed=7, stream_chunk=4)


class TestResume:
    def _interrupt_after_epoch(self, dataset, workers, epoch, tmp_path, seed=13):
        """Train fully, then delete checkpoints newer than ``epoch``."""
        manager = CheckpointManager(tmp_path, every=1, keep=100)
        HogwildTrainer(BASE, workers=workers, seed=seed).fit(
            dataset.graph, dataset.log, checkpoint=manager
        )
        survivor = manager.path_for_epoch(epoch).name
        for path in manager.checkpoint_paths():
            if path.name != survivor:
                path.unlink()
        return manager

    def test_single_worker_resume_is_bitwise_identical(self, dataset, tmp_path):
        reference = HogwildTrainer(BASE, workers=1, seed=13).fit(
            dataset.graph, dataset.log
        )
        manager = self._interrupt_after_epoch(dataset, 1, 1, tmp_path)
        resumed = HogwildTrainer(BASE, workers=1, seed=13).fit(
            dataset.graph, dataset.log, checkpoint=manager, resume=True
        )
        _assert_identical(resumed, reference)

    def test_two_worker_resume_completes_within_tolerance(self, dataset, tmp_path):
        reference = HogwildTrainer(BASE, workers=2, seed=13).fit(
            dataset.graph, dataset.log
        )
        manager = self._interrupt_after_epoch(dataset, 2, 1, tmp_path)
        resumed = HogwildTrainer(BASE, workers=2, seed=13).fit(
            dataset.graph, dataset.log, checkpoint=manager, resume=True
        )
        assert len(resumed.loss_history) == len(reference.loss_history)
        assert resumed.loss_history[-1] == pytest.approx(
            reference.loss_history[-1], rel=CROSS_WORKER_LOSS_RTOL
        )

    def test_resume_refuses_other_worker_count(self, dataset, tmp_path):
        manager = self._interrupt_after_epoch(dataset, 2, 1, tmp_path)
        with pytest.raises(CheckpointError, match="worker"):
            HogwildTrainer(BASE, workers=3, seed=13).fit(
                dataset.graph, dataset.log, checkpoint=manager, resume=True
            )

    def test_single_process_engine_refuses_parallel_checkpoint(
        self, dataset, tmp_path
    ):
        manager = self._interrupt_after_epoch(dataset, 1, 1, tmp_path)
        with pytest.raises(CheckpointError, match="HogwildTrainer"):
            Inf2vecModel(BASE, seed=13).fit(
                dataset.graph, dataset.log, checkpoint=manager, resume=True
            )

    def test_parallel_engine_refuses_single_process_checkpoint(
        self, dataset, tmp_path
    ):
        manager = CheckpointManager(tmp_path, every=1, keep=100)
        Inf2vecModel(BASE, seed=13).fit(
            dataset.graph, dataset.log, checkpoint=manager
        )
        with pytest.raises(CheckpointError, match="single-process"):
            HogwildTrainer(BASE, workers=1, seed=13).fit(
                dataset.graph, dataset.log, checkpoint=manager, resume=True
            )

    def test_resume_after_completed_run_restores_terminal_state(
        self, dataset, tmp_path
    ):
        manager = CheckpointManager(tmp_path, every=1, keep=100)
        reference = HogwildTrainer(BASE, workers=1, seed=13).fit(
            dataset.graph, dataset.log, checkpoint=manager
        )
        resumed = HogwildTrainer(BASE, workers=1, seed=13).fit(
            dataset.graph, dataset.log, checkpoint=manager, resume=True
        )
        _assert_identical(resumed, reference)

    def test_resume_without_manager_raises(self, dataset):
        with pytest.raises(TrainingError):
            HogwildTrainer(BASE, workers=1, seed=13).fit(
                dataset.graph, dataset.log, resume=True
            )
