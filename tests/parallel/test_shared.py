"""Shared-memory parameter block tests.

The hogwild engine's correctness rests on one mechanism: four POSIX
shared-memory blocks exposed as a zero-copy
:class:`~repro.core.embeddings.InfluenceEmbedding` in every process.
These tests pin the round trip (create -> attach -> mutate -> observe),
the zero-copy property, and the lifecycle rules (views dropped before
close, owner-only unlink).
"""

import numpy as np
import pytest

from repro.core.embeddings import InfluenceEmbedding
from repro.errors import TrainingError
from repro.parallel import PARAMETER_FIELDS, SharedEmbedding, SharedEmbeddingSpec


@pytest.fixture
def embedding():
    return InfluenceEmbedding.initialize(30, 6, seed=3)


class TestSharedEmbedding:
    def test_create_copies_initial_values(self, embedding):
        with SharedEmbedding.create(embedding) as shared:
            for field in PARAMETER_FIELDS:
                np.testing.assert_array_equal(
                    getattr(shared.embedding, field), getattr(embedding, field)
                )

    def test_create_does_not_alias_the_source(self, embedding):
        with SharedEmbedding.create(embedding) as shared:
            embedding.source[0, 0] = 123.0
            assert shared.embedding.source[0, 0] != 123.0

    def test_attach_sees_writes_from_the_owner(self, embedding):
        with SharedEmbedding.create(embedding) as shared:
            attached = SharedEmbedding.attach(shared.spec)
            try:
                shared.embedding.source[2, 3] = 7.5
                shared.embedding.target_bias[4] = -1.25
                assert attached.embedding.source[2, 3] == 7.5
                assert attached.embedding.target_bias[4] == -1.25
            finally:
                attached.close()

    def test_owner_sees_writes_from_attachment(self, embedding):
        with SharedEmbedding.create(embedding) as shared:
            attached = SharedEmbedding.attach(shared.spec)
            try:
                attached.embedding.target[1] = 9.0
                np.testing.assert_array_equal(
                    shared.embedding.target[1], np.full(6, 9.0)
                )
            finally:
                attached.close()

    def test_snapshot_is_a_private_copy(self, embedding):
        with SharedEmbedding.create(embedding) as shared:
            snapshot = shared.snapshot()
            shared.embedding.source[0, 0] = 55.0
            assert snapshot.source[0, 0] != 55.0

    def test_embedding_raises_after_close(self, embedding):
        shared = SharedEmbedding.create(embedding)
        try:
            shared.close()
            with pytest.raises(TrainingError):
                shared.embedding
        finally:
            shared.unlink()

    def test_close_is_idempotent(self, embedding):
        shared = SharedEmbedding.create(embedding)
        shared.close()
        shared.close()
        shared.unlink()

    def test_attachment_may_not_unlink(self, embedding):
        with SharedEmbedding.create(embedding) as shared:
            attached = SharedEmbedding.attach(shared.spec)
            try:
                with pytest.raises(TrainingError):
                    attached.unlink()
            finally:
                attached.close()

    def test_spec_shapes(self, embedding):
        with SharedEmbedding.create(embedding) as shared:
            assert shared.spec.num_users == 30
            assert shared.spec.dim == 6
            assert shared.spec.shapes == ((30, 6), (30, 6), (30,), (30,))


class TestSharedEmbeddingSpec:
    def test_rejects_bad_sizes(self):
        with pytest.raises((TypeError, ValueError)):
            SharedEmbeddingSpec(
                names=("a", "b", "c", "d"), num_users=0, dim=4
            )
        with pytest.raises((TypeError, ValueError)):
            SharedEmbeddingSpec(
                names=("a", "b", "c", "d"), num_users=4, dim=-1
            )

    def test_rejects_wrong_name_count(self):
        with pytest.raises(TrainingError):
            SharedEmbeddingSpec(names=("a", "b"), num_users=4, dim=4)
