"""SIGKILL failure injection against a live multi-worker training run.

The hardest crash the parallel engine must survive: the *parent* is
SIGKILL'd while its hogwild workers are alive and mid-epoch.  Three
things must hold afterwards:

* the orphaned workers exit on their own (the command pipe EOFs when
  the parent dies — nothing may linger and keep training);
* every checkpoint at a final destination loads cleanly (atomic
  writes, epoch-barrier checkpointing);
* re-running with ``--resume`` at the same worker count completes the
  job from the latest checkpoint.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ckpt.manager import _CKPT_PATTERN

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

TRAIN_ARGS = [
    "train",
    "--workers", "2",
    "--num-users", "100",
    "--num-items", "15",
    "--dim", "8",
    "--epochs", "10",
    "--seed", "0",
]


def _env():
    return dict(os.environ, PYTHONPATH=str(REPO_SRC))


def _run_cli(extra, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *TRAIN_ARGS, *extra],
        cwd=cwd,
        env=_env(),
        capture_output=True,
        text=True,
        timeout=180,
    )


def _spawn_cli(extra, cwd):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *TRAIN_ARGS, *extra],
        cwd=cwd,
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_first_checkpoint(ckpt_dir: Path, proc, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if ckpt_dir.is_dir() and any(
            _CKPT_PATTERN.match(p.name) for p in ckpt_dir.iterdir()
        ):
            return
        if proc.poll() is not None:
            return
        time.sleep(0.01)
    pytest.fail("no checkpoint appeared within the timeout")


def _worker_pids(parent_pid: int) -> list[int]:
    """Direct children of ``parent_pid`` (Linux /proc, else empty)."""
    children: list[int] = []
    task_dir = Path(f"/proc/{parent_pid}/task")
    if not task_dir.is_dir():
        return children
    for task in task_dir.iterdir():
        child_file = task / "children"
        try:
            children.extend(
                int(pid) for pid in child_file.read_text().split()
            )
        except OSError:
            continue
    return children


def _assert_exits(pids: list[int], timeout=30.0):
    """Every pid must be gone (or a reaped zombie) within the timeout."""
    deadline = time.monotonic() + timeout
    remaining = list(pids)
    while remaining and time.monotonic() < deadline:
        still_alive = []
        for pid in remaining:
            try:
                stat = Path(f"/proc/{pid}/stat").read_text()
            except OSError:
                continue  # exited and reaped
            if stat.split(") ")[-1].split()[0] == "Z":
                continue  # zombie: dead, awaiting reap by init
            still_alive.append(pid)
        remaining = still_alive
        if remaining:
            time.sleep(0.05)
    assert not remaining, f"orphaned hogwild workers still alive: {remaining}"


@pytest.mark.skipif(
    not Path("/proc").is_dir(), reason="needs /proc to track worker pids"
)
def test_sigkill_with_workers_alive_resumes_cleanly(tmp_path):
    reference = _run_cli(["--out", str(tmp_path / "ref.npz")], tmp_path)
    assert reference.returncode == 0, reference.stderr

    ckpt_dir = tmp_path / "ckpts"
    victim = _spawn_cli(
        ["--checkpoint-dir", str(ckpt_dir), "--checkpoint-every", "1"],
        tmp_path,
    )
    orphans: list[int] = []
    try:
        _wait_for_first_checkpoint(ckpt_dir, victim)
        if victim.poll() is None:
            # Capture the live worker pids, then kill the parent hard.
            orphans = _worker_pids(victim.pid)
            os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.wait(timeout=30)

    # Orphaned workers must notice the dead parent (pipe EOF) and exit.
    _assert_exits(orphans)

    # Every committed checkpoint must load cleanly despite the kill.
    from repro.ckpt import TrainingState

    committed = [p for p in ckpt_dir.iterdir() if _CKPT_PATTERN.match(p.name)]
    assert committed, "the run checkpointed before the kill"
    for path in committed:
        state = TrainingState.load(path)
        assert state.worker_topology is not None
        assert state.worker_topology["workers"] == 2

    # Same worker count resumes and completes the job.
    resumed = _run_cli(
        [
            "--checkpoint-dir", str(ckpt_dir),
            "--checkpoint-every", "1",
            "--resume",
            "--out", str(tmp_path / "resumed.npz"),
        ],
        tmp_path,
    )
    assert resumed.returncode == 0, resumed.stderr
    with np.load(tmp_path / "resumed.npz") as final:
        for key in final.files:
            assert np.isfinite(final[key]).all(), key
