"""Smoke tests for the printable experiment mains (fast ones only).

The heavyweight mains (Tables II–VI, Figs 6–9) are exercised by their
benchmarks; these tests cover the cheap statistics mains end to end,
including their ASCII figures.
"""

import pytest

from repro.experiments import fig1_2_powerlaw, fig3_cdf, table1_stats


class TestStatisticsMains:
    def test_table1_main_prints_table(self, capsys):
        table1_stats.main("small", seed=0)
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "digg-like" in out
        assert "flickr-like" in out

    def test_fig1_2_main_prints_scatter(self, capsys):
        fig1_2_powerlaw.main("small", seed=0)
        out = capsys.readouterr().out
        assert "Figures 1-2" in out
        assert "*" in out  # the ASCII scatter
        assert "log frequency" in out

    def test_fig3_main_prints_cdf_chart(self, capsys):
        fig3_cdf.main("small", seed=0)
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "legend:" in out
        assert "CDF(0) measured" in out
