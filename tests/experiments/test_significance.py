"""Smoke tests for the multi-run significance experiment."""

import pytest

from repro.experiments import significance
from repro.experiments.common import ExperimentScale

MICRO = ExperimentScale(
    name="micro",
    num_users=120,
    num_items=50,
    dim=8,
    context_length=8,
    alpha=0.2,
    learning_rate=0.02,
    epochs=3,
    num_negatives=3,
    mc_runs=20,
)


class TestSignificanceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return significance.run(MICRO, seed=0, num_runs=2)

    def test_runs_recorded(self, result):
        assert len(result.inf2vec.runs) == 2
        assert len(result.baseline.runs) == 2
        assert result.baseline_name == "MF"

    def test_tests_cover_metrics(self, result):
        assert set(result.tests) == {"AUC", "MAP"}
        for test in result.tests.values():
            assert 0.0 <= test.p_value <= 1.0

    def test_summary_lines_formatted(self, result):
        lines = result.summary_lines()
        assert any("Inf2vec" in line and "σ" in line for line in lines)
        assert any("paired t-test" in line for line in lines)

    def test_sigma_non_negative(self, result):
        assert result.inf2vec.std("AUC") >= 0.0
