"""Smoke + shape tests for the experiment pipelines at a micro scale."""

import numpy as np
import pytest

from repro.experiments import ExperimentScale, get_scale
from repro.experiments import (
    fig1_2_powerlaw,
    fig3_cdf,
    fig7_dimension,
    fig8_context_length,
    fig9_efficiency,
    table1_stats,
    table2_activation,
    table4_ablation,
    table5_aggregation,
)
from repro.errors import EvaluationError

#: Micro working point so the whole module runs in seconds.
MICRO = ExperimentScale(
    name="micro",
    num_users=150,
    num_items=60,
    dim=8,
    context_length=10,
    alpha=0.2,
    learning_rate=0.02,
    epochs=4,
    num_negatives=3,
    mc_runs=20,
)


class TestScaleResolution:
    def test_known_names(self):
        assert get_scale("small").name == "small"
        assert get_scale("medium").num_users > get_scale("small").num_users

    def test_passthrough(self):
        assert get_scale(MICRO) is MICRO

    def test_unknown_rejected(self):
        with pytest.raises(EvaluationError):
            get_scale("galactic")


class TestTable1:
    def test_rows_well_formed(self):
        rows = table1_stats.run(MICRO, seed=0)
        assert [r.dataset for r in rows] == ["digg-like", "flickr-like"]
        for row in rows:
            assert row.num_users == 150
            assert row.num_actions > 0
            assert row.num_influence_pairs > 0
            assert row.avg_out_degree > 1

    def test_flickr_denser(self):
        digg, flickr = table1_stats.run(MICRO, seed=0)
        assert flickr.num_edges > digg.num_edges


class TestFig1and2:
    def test_power_law_shape(self):
        rows = fig1_2_powerlaw.run(MICRO, seed=0)
        assert len(rows) == 4  # 2 datasets x {source, target}
        for row in rows:
            assert row.fit.exponent > 1.0
            assert row.histogram
            assert row.max_frequency >= 1


class TestFig3:
    def test_cdf_shape_and_contrast(self):
        rows = fig3_cdf.run(MICRO, seed=0)
        digg, flickr = rows
        for row in rows:
            values = [row.cdf[x] for x in sorted(row.cdf)]
            assert values == sorted(values)
            assert 0.0 < row.cdf0 < 1.0
        # Fig 3's headline: Digg more spontaneous than Flickr.
        assert digg.cdf0 > flickr.cdf0


class TestTable2:
    def test_comparison_rows(self):
        results = table2_activation.run(MICRO, seed=0, profiles=("digg",))
        (result,) = results
        assert set(result.rows) == {
            "DE", "ST", "EM", "Emb-IC", "MF", "Node2vec", "Inf2vec",
        }
        for row in result.rows.values():
            assert 0.0 <= row.auc <= 1.0
        # DE never wins.
        assert result.winner("AUC") != "DE"
        assert "Method" in result.table()


class TestTable4:
    def test_ablation_rows(self):
        results = table4_ablation.run(
            MICRO, seed=0, profiles=("digg",), tasks=("activation",)
        )
        (result,) = results
        assert set(result.rows) == {"Inf2vec", "Inf2vec-L"}
        assert isinstance(result.global_context_helps(), bool)


class TestTable5:
    def test_all_aggregators_evaluated(self):
        results = table5_aggregation.run(MICRO, seed=0, profiles=("digg",))
        (result,) = results
        assert set(result.rows) == {"ave", "sum", "max", "latest"}
        assert result.best("MAP") in result.rows


class TestFig7and8:
    def test_dimension_sweep_series(self):
        sweeps = fig7_dimension.run(
            MICRO, seed=0, dimensions=(4, 8), profiles=("digg",)
        )
        (sweep,) = sweeps
        series = sweep.series("MAP")
        assert list(series) == [4, 8]
        assert all(np.isfinite(v) for v in series.values())

    def test_length_sweep_series(self):
        sweeps = fig8_context_length.run(
            MICRO, seed=0, lengths=(4, 8), profiles=("digg",)
        )
        (sweep,) = sweeps
        assert list(sweep.series("MAP")) == [4, 8]


class TestFig9:
    def test_efficiency_points(self):
        results = fig9_efficiency.run(
            MICRO, seed=0, dimensions=(4, 8), profiles=("digg",)
        )
        (result,) = results
        assert set(result.points) == {4, 8}
        for point in result.points.values():
            assert point.inf2vec_seconds > 0
            assert point.emb_ic_seconds > 0
            assert point.speedup > 0
