"""Tests for the sketch-based influence-maximisation subsystem."""
