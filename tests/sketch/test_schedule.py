"""Unit tests for the IMM-style adaptive sampling schedule."""

import math

import numpy as np
import pytest

from repro.data.graph import SocialGraph
from repro.data.synthetic import SyntheticSocialDataset
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import SketchError
from repro.sketch.schedule import adaptive_rr_pool, log_binomial


@pytest.fixture
def planted_probs() -> EdgeProbabilities:
    data = SyntheticSocialDataset.digg_like(num_users=100, num_items=20, seed=2)
    return data.planted.edge_probabilities


class TestLogBinomial:
    @pytest.mark.parametrize("n,k", [(5, 2), (10, 0), (10, 10), (40, 7)])
    def test_matches_exact_binomial(self, n, k):
        assert log_binomial(n, k) == pytest.approx(math.log(math.comb(n, k)))

    def test_rejects_out_of_range(self):
        with pytest.raises(SketchError):
            log_binomial(3, 5)
        with pytest.raises(SketchError):
            log_binomial(3, -1)


class TestAdaptiveRRPool:
    def test_same_seed_reproduces_everything(self, planted_probs):
        pool_a, sched_a = adaptive_rr_pool(planted_probs, 3, seed=11)
        pool_b, sched_b = adaptive_rr_pool(planted_probs, 3, seed=11)
        np.testing.assert_array_equal(pool_a.indptr, pool_b.indptr)
        np.testing.assert_array_equal(pool_a.nodes, pool_b.nodes)
        assert sched_a == sched_b

    def test_schedule_transcript_consistent(self, planted_probs):
        pool, schedule = adaptive_rr_pool(planted_probs, 3, seed=1)
        assert schedule.generated_sketches == pool.num_sketches
        assert schedule.phases, "phase 1 must run at least one round"
        assert schedule.lower_bound >= 1.0
        if not schedule.capped:
            assert pool.num_sketches >= schedule.target_sketches
        # The certified bound comes from the stopping round's estimate.
        stopped = [p for p in schedule.phases if p["stopped"]]
        if stopped:
            eps_prime = math.sqrt(2.0) * schedule.epsilon
            assert schedule.lower_bound == pytest.approx(
                stopped[0]["greedy_estimate"] / (1.0 + eps_prime)
            )

    def test_cap_binds_and_is_recorded(self, planted_probs):
        pool, schedule = adaptive_rr_pool(
            planted_probs, 3, seed=1, max_sketches=50
        )
        assert schedule.capped
        assert pool.num_sketches <= 50

    def test_tighter_epsilon_needs_more_sketches(self, planted_probs):
        loose_pool, _ = adaptive_rr_pool(planted_probs, 2, epsilon=0.5, seed=3)
        tight_pool, _ = adaptive_rr_pool(planted_probs, 2, epsilon=0.2, seed=3)
        assert tight_pool.num_sketches > loose_pool.num_sketches

    def test_single_node_universe(self):
        graph = SocialGraph(1, [])
        probs = EdgeProbabilities(graph, np.empty(0))
        pool, schedule = adaptive_rr_pool(probs, 1, seed=0)
        assert pool.num_sketches == 1
        assert not schedule.capped

    def test_invalid_inputs(self, planted_probs):
        with pytest.raises(SketchError):
            adaptive_rr_pool(planted_probs, 101)
        with pytest.raises(SketchError):
            adaptive_rr_pool(planted_probs, 2, epsilon=0.0)
        with pytest.raises(SketchError):
            adaptive_rr_pool(planted_probs, 2, epsilon=1.5)
        with pytest.raises(SketchError):
            adaptive_rr_pool(planted_probs, 2, ell=-1.0)
        with pytest.raises(ValueError):
            adaptive_rr_pool(planted_probs, 0)
