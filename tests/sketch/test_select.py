"""Unit tests for lazy-greedy max-coverage selection."""

import numpy as np
import pytest

from repro.errors import SketchError
from repro.sketch.rrsets import RRSketchPool
from repro.sketch.select import max_coverage_seeds


def brute_force_greedy(pool, num_seeds, candidates=None):
    """Reference greedy: full re-scan per round, smallest-id tie-break."""
    nodes = (
        list(range(pool.num_nodes))
        if candidates is None
        else sorted(set(int(c) for c in candidates))
    )
    covered = np.zeros(pool.num_sketches, dtype=bool)
    seeds, gains = [], []
    for _ in range(num_seeds):
        best_node, best_gain = None, -1
        for node in nodes:
            if node in seeds:
                continue
            gain = int(np.count_nonzero(~covered[pool.sketches_containing(node)]))
            if gain > best_gain:
                best_node, best_gain = node, gain
        seeds.append(best_node)
        gains.append(best_gain)
        covered[pool.sketches_containing(best_node)] = True
    return tuple(seeds), tuple(gains), int(np.count_nonzero(covered))


def random_pool(num_nodes, num_sketches, seed):
    rng = np.random.default_rng(seed)
    sizes = rng.integers(1, 5, size=num_sketches)
    nodes = np.concatenate(
        [rng.choice(num_nodes, size=s, replace=False) for s in sizes]
    )
    indptr = np.concatenate([[0], np.cumsum(sizes)])
    return RRSketchPool(num_nodes, indptr, nodes)


class TestMaxCoverage:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_brute_force_greedy(self, seed):
        pool = random_pool(num_nodes=10, num_sketches=40, seed=seed)
        result = max_coverage_seeds(pool, 4)
        seeds, gains, covered = brute_force_greedy(pool, 4)
        assert result.seeds == seeds
        assert result.marginal_counts == gains
        assert result.covered_sketches == covered

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force_with_candidates(self, seed):
        pool = random_pool(num_nodes=12, num_sketches=30, seed=seed)
        candidates = [0, 3, 5, 7, 9, 11]
        result = max_coverage_seeds(pool, 3, candidates)
        seeds, gains, _ = brute_force_greedy(pool, 3, candidates)
        assert result.seeds == seeds
        assert result.marginal_counts == gains
        assert all(s in candidates for s in result.seeds)

    def test_tie_breaks_to_smallest_node(self):
        # Nodes 2 and 5 each cover one distinct sketch; 2 must win.
        pool = RRSketchPool(6, np.array([0, 1, 2]), np.array([5, 2]))
        result = max_coverage_seeds(pool, 1)
        assert result.seeds == (2,)

    def test_coverage_fraction(self):
        pool = RRSketchPool(4, np.array([0, 1, 2, 3]), np.array([0, 0, 3]))
        result = max_coverage_seeds(pool, 1)
        assert result.seeds == (0,)
        assert result.covered_sketches == 2
        assert result.coverage_fraction == pytest.approx(2 / 3)

    def test_gains_non_increasing(self):
        pool = random_pool(num_nodes=15, num_sketches=60, seed=9)
        result = max_coverage_seeds(pool, 6)
        gains = list(result.marginal_counts)
        assert gains == sorted(gains, reverse=True)

    def test_empty_pool_selects_by_tie_break(self):
        result = max_coverage_seeds(RRSketchPool.empty(3), 2)
        assert result.seeds == (0, 1)
        assert result.coverage_fraction == 0.0

    def test_invalid_inputs(self):
        pool = random_pool(num_nodes=5, num_sketches=10, seed=0)
        with pytest.raises(SketchError):
            max_coverage_seeds(pool, 2, candidates=[1, 99])
        with pytest.raises(SketchError):
            max_coverage_seeds(pool, 3, candidates=[1, 2])
        with pytest.raises(ValueError):
            max_coverage_seeds(pool, 0)
