"""Unit tests for reverse-reachable set generation and pooling."""

import numpy as np
import pytest

from repro.data.graph import SocialGraph
from repro.data.synthetic import SyntheticSocialDataset
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import SketchError
from repro.sketch.rrsets import (
    RRGenerator,
    RRSketchPool,
    reverse_edge_probabilities,
)


@pytest.fixture
def chain_probs() -> EdgeProbabilities:
    """0 -> 1 -> 2 -> 3, every edge certain."""
    graph = SocialGraph(4, [(0, 1), (1, 2), (2, 3)])
    return EdgeProbabilities.from_dict(
        graph, {(0, 1): 1.0, (1, 2): 1.0, (2, 3): 1.0}
    )


@pytest.fixture
def planted_probs() -> EdgeProbabilities:
    data = SyntheticSocialDataset.digg_like(num_users=120, num_items=20, seed=5)
    return data.planted.edge_probabilities


class TestReverseEdgeProbabilities:
    def test_values_follow_in_csr_order(self, planted_probs):
        """Every in-edge of every node carries its forward probability."""
        graph = planted_probs.graph
        lookup = {
            (int(u), int(v)): float(p)
            for (u, v), p in zip(
                graph.edge_array(), planted_probs.values
            )
        }
        in_indptr, in_indices, in_values = reverse_edge_probabilities(
            planted_probs
        )
        for v in range(graph.num_nodes):
            sources = in_indices[in_indptr[v] : in_indptr[v + 1]]
            values = in_values[in_indptr[v] : in_indptr[v + 1]]
            for u, p in zip(sources, values):
                assert lookup[(int(u), v)] == p

    def test_shapes_align(self, chain_probs):
        in_indptr, in_indices, in_values = reverse_edge_probabilities(
            chain_probs
        )
        assert in_indptr.shape[0] == chain_probs.graph.num_nodes + 1
        assert in_indices.shape == in_values.shape


class TestRRGenerator:
    def test_certain_chain_yields_full_ancestry(self, chain_probs):
        """With p=1 everywhere an RR set is the root plus all ancestors."""
        generator = RRGenerator(chain_probs, seed=0)
        pool = RRSketchPool(4, *generator.generate(200))
        for i in range(pool.num_sketches):
            members = pool.sketch(i)
            root = int(members[0])  # roots recorded first
            assert set(members.tolist()) == set(range(root + 1))

    def test_same_seed_same_pool(self, planted_probs):
        a = RRGenerator(planted_probs, seed=42).generate(500)
        b = RRGenerator(planted_probs, seed=42).generate(500)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_seeds_differ(self, planted_probs):
        a = RRGenerator(planted_probs, seed=1).generate(500)
        b = RRGenerator(planted_probs, seed=2).generate(500)
        assert not (
            a[1].shape == b[1].shape and np.array_equal(a[1], b[1])
        )

    def test_successive_calls_extend_one_stream(self, planted_probs):
        """generate(a); generate(b) equals generate(a+b) with one seed.

        Holds when ``a`` is a multiple of ``batch_size``: roots are drawn
        one batch at a time, so both call sequences consume the generator's
        stream in identical chunks (64 | 64,64,8 versus 64,64,64,8).
        """
        split = RRGenerator(planted_probs, seed=7, batch_size=64)
        pool = RRSketchPool(planted_probs.graph.num_nodes, *split.generate(64))
        pool = pool.extended(*split.generate(136))
        whole = RRSketchPool(
            planted_probs.graph.num_nodes,
            *RRGenerator(planted_probs, seed=7, batch_size=64).generate(200),
        )
        np.testing.assert_array_equal(pool.indptr, whole.indptr)
        np.testing.assert_array_equal(pool.nodes, whole.nodes)

    def test_members_are_unique_per_sketch(self, planted_probs):
        generator = RRGenerator(planted_probs, seed=3)
        pool = RRSketchPool(
            planted_probs.graph.num_nodes, *generator.generate(300)
        )
        for i in range(pool.num_sketches):
            members = pool.sketch(i)
            assert np.unique(members).shape[0] == members.shape[0]

    def test_empty_graph_rejected(self):
        graph = SocialGraph(0, [])
        probs = EdgeProbabilities(graph, np.empty(0))
        with pytest.raises(SketchError):
            RRGenerator(probs)

    def test_bad_count_rejected(self, chain_probs):
        with pytest.raises(ValueError):
            RRGenerator(chain_probs, seed=0).generate(0)


class TestRRSketchPool:
    def _pool(self) -> RRSketchPool:
        # Sketches: {0, 1}, {1}, {2, 0}, {} over 3 nodes.
        return RRSketchPool(
            3, np.array([0, 2, 3, 5, 5]), np.array([0, 1, 1, 2, 0])
        )

    def test_basic_accessors(self):
        pool = self._pool()
        assert pool.num_sketches == 4
        np.testing.assert_array_equal(pool.sizes(), [2, 1, 2, 0])
        np.testing.assert_array_equal(pool.sketch(2), [2, 0])
        np.testing.assert_array_equal(pool.coverage_counts(), [2, 2, 1])

    def test_inverted_index_round_trip(self):
        pool = self._pool()
        assert sorted(pool.sketches_containing(0).tolist()) == [0, 2]
        assert sorted(pool.sketches_containing(1).tolist()) == [0, 1]
        assert pool.sketches_containing(2).tolist() == [2]

    def test_spread_estimate_counts_distinct_sketches(self):
        pool = self._pool()
        # {0} covers sketches {0, 2}; {0, 1} covers {0, 1, 2}.
        assert pool.spread_estimate([0]) == pytest.approx(3 * 2 / 4)
        assert pool.spread_estimate([0, 1]) == pytest.approx(3 * 3 / 4)
        assert pool.spread_scale() == pytest.approx(3 / 4)

    def test_extended_appends(self):
        pool = self._pool().extended(np.array([0, 1]), np.array([2]))
        assert pool.num_sketches == 5
        np.testing.assert_array_equal(pool.sketch(4), [2])

    def test_invalid_layouts_rejected(self):
        with pytest.raises(SketchError):
            RRSketchPool(3, np.array([1, 2]), np.array([0, 1]))
        with pytest.raises(SketchError):
            RRSketchPool(3, np.array([0, 3]), np.array([0, 1]))
        with pytest.raises(SketchError):
            RRSketchPool(3, np.array([0, 1]), np.array([7]))
        with pytest.raises(SketchError):
            self._pool().sketch(99)
        with pytest.raises(SketchError):
            self._pool().sketches_containing(-1)
        with pytest.raises(SketchError):
            RRSketchPool.empty(3).spread_estimate([0])

    def test_batch_buffer_reuse_does_not_leak_state(self, planted_probs):
        """Small batches reuse the visited buffer; sketches stay valid."""
        generator = RRGenerator(planted_probs, seed=11, batch_size=8)
        pool = RRSketchPool(
            planted_probs.graph.num_nodes, *generator.generate(100)
        )
        assert pool.num_sketches == 100
        for i in range(pool.num_sketches):
            members = pool.sketch(i)
            assert np.unique(members).shape[0] == members.shape[0]
