"""Contracts of the pinned public surface: result types and constants.

Every symbol exercised here is exported through a package ``__all__``
(and kept honest by the ``dead-export`` project rule): these tests pin
the *shape* of the public result types — field presence, invariants
the docstrings promise — and the values of public constants other
tools (dashboards, notebooks, downstream scripts) are entitled to rely
on.  Behavioural depth lives in the per-subsystem suites; this file is
the compatibility contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    AuthorPrediction,
    SeedSelection,
    greedy_influence_maximization,
    run_case_study,
)
from repro.ckpt import CKPT_WRITE_LATENCY_BUCKETS
from repro.core import (
    InfluencePair,
    PairFrequencies,
    extract_all_pairs,
    pair_frequencies,
)
from repro.data.citation import CitationConfig, CitationDataset
from repro.diffusion import (
    LTResult,
    PAPER_NUM_RUNS,
    simulate_lt,
    uniform_lt_weights,
)
from repro.diffusion.probabilities import EdgeProbabilities
from repro.eval import (
    ActivationCandidate,
    DiffusionQuery,
    PAPER_SEED_FRACTION,
    PrecisionRecallCurve,
    RocCurve,
    TuningResult,
    TuningTrial,
    episode_candidates,
    grid_search,
    make_query,
    precision_recall_curve,
    roc_curve,
)
from repro.experiments import MEDIUM, SCALES, SMALL
from repro.extensions import KMeansResult, kmeans
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    Span,
    Summary,
    Tracer,
)
from repro.obs.export import MANIFEST_FILENAME, TRACE_FILENAME
from repro.obs.metrics import DEFAULT_SUMMARY_QUANTILES
from repro.obs.regress import (
    DEFAULT_BASELINE_DIR,
    Finding,
    MetricPolicy,
    REPORT_FILES,
    compare_reports,
)
from repro.serve import INDEX_FORMAT_VERSION, TopKIndex
from repro.sketch import (
    MaxCoverageResult,
    SketchSchedule,
    adaptive_rr_pool,
    max_coverage_seeds,
)
from repro.baselines import StaticModel


@pytest.fixture
def star_probs() -> EdgeProbabilities:
    """Node 0 reaches {1..4} deterministically."""
    from repro.data.graph import SocialGraph

    graph = SocialGraph(6, [(0, 1), (0, 2), (0, 3), (0, 4), (5, 4)])
    return EdgeProbabilities.from_dict(
        graph, {(0, 1): 1.0, (0, 2): 1.0, (0, 3): 1.0, (0, 4): 1.0, (5, 4): 1.0}
    )


class TestInfluenceResultTypes:
    def test_greedy_returns_seed_selection(self, star_probs):
        selection = greedy_influence_maximization(
            star_probs, num_seeds=2, num_runs=20, seed=3
        )
        assert isinstance(selection, SeedSelection)
        assert len(selection.seeds) == 2
        assert len(selection.marginal_gains) == len(selection.seeds)
        assert selection.expected_spread >= 1.0

    def test_sketch_pipeline_types(self, star_probs):
        pool, schedule = adaptive_rr_pool(
            star_probs, num_seeds=1, epsilon=0.5, seed=7, max_sketches=4096
        )
        assert isinstance(schedule, SketchSchedule)
        assert schedule.epsilon == 0.5
        assert schedule.generated_sketches == pool.num_sketches
        assert schedule.lower_bound >= 1.0
        coverage = max_coverage_seeds(pool, num_seeds=1)
        assert isinstance(coverage, MaxCoverageResult)
        # Node 0 reaches every other node, so it must cover the most
        # sketches and be picked first.
        assert coverage.seeds[0] == 0
        assert coverage.covered_sketches == sum(coverage.marginal_counts)

    def test_lt_result_shape(self, star_probs):
        weights = uniform_lt_weights(star_probs.graph)
        result = simulate_lt(weights, seeds=[0], seed=5)
        assert isinstance(result, LTResult)
        assert 0 in result.activated_set()
        assert result.size == result.activated.shape[0]
        assert result.activation_round.shape == result.activated.shape


class TestPairTypes:
    def test_pair_frequencies_match_extracted_pairs(self, tiny_graph, tiny_log):
        pairs = extract_all_pairs(tiny_graph, tiny_log)
        assert pairs and all(isinstance(p, InfluencePair) for p in pairs)
        frequencies = pair_frequencies(tiny_graph, tiny_log)
        assert isinstance(frequencies, PairFrequencies)
        assert frequencies.total_pairs == len(pairs)
        sources = {p.source for p in pairs}
        assert {
            u
            for u in range(tiny_graph.num_nodes)
            if frequencies.source_counts[u]
        } == sources


class TestCitationStudy:
    def test_showcase_entries_are_author_predictions(self):
        config = CitationConfig(
            num_authors=40, num_papers=50, mean_references=3.0
        )
        dataset = CitationDataset.generate(config, seed=5)
        result = run_case_study(
            dataset,
            num_showcase=2,
            mc_runs=20,
            embedding_dim=8,
            embedding_epochs=2,
            seed=5,
        )
        assert result.showcase
        for prediction in result.showcase:
            assert isinstance(prediction, AuthorPrediction)
            assert len(prediction.embedding_top10) <= 10
            assert prediction.embedding_hits <= len(prediction.embedding_top10)
            assert prediction.conventional_hits <= len(
                prediction.conventional_top10
            )


class TestEvalTypes:
    def test_curve_types_and_invariants(self):
        scores = [0.9, 0.8, 0.7, 0.2, 0.1]
        labels = [1, 1, 0, 1, 0]
        roc = roc_curve(scores, labels)
        assert isinstance(roc, RocCurve)
        assert roc.false_positive_rate[0] == 0.0
        assert roc.true_positive_rate[-1] == 1.0
        assert 0.0 <= roc.auc <= 1.0
        pr = precision_recall_curve(scores, labels)
        assert isinstance(pr, PrecisionRecallCurve)
        assert pr.precision.shape == pr.recall.shape
        assert 0.0 <= pr.average_precision <= 1.0

    def test_activation_candidates(self, tiny_graph, fig5_episode):
        candidates = episode_candidates(tiny_graph, fig5_episode)
        assert candidates
        for candidate in candidates:
            assert isinstance(candidate, ActivationCandidate)
            assert candidate.label in (0, 1)
            assert candidate.item == fig5_episode.item

    def test_diffusion_query_and_paper_fraction(self, fig5_episode):
        assert PAPER_SEED_FRACTION == 0.05
        query = make_query(fig5_episode, seed_fraction=0.4)
        assert isinstance(query, DiffusionQuery)
        assert query.item == fig5_episode.item
        assert query.ground_truth  # non-seed adopters remain
        assert not query.ground_truth & set(query.seeds)

    def test_grid_search_trial_types(self, small_dataset, small_splits):
        train, tune, _ = small_splits
        result = grid_search(
            lambda **params: StaticModel(smoothing=params["smoothing"]),
            {"smoothing": [0.0, 1.0]},
            small_dataset.graph,
            train,
            tune,
            predictor_kwargs={"num_runs": 5, "seed": 0},
        )
        assert isinstance(result, TuningResult)
        assert all(isinstance(trial, TuningTrial) for trial in result.trials)
        best = result.best
        assert best.metric(result.metric) == max(
            trial.metric(result.metric) for trial in result.trials
        )
        assert result.best_params in [trial.params for trial in result.trials]


class TestExperimentScales:
    def test_registry_is_consistent(self):
        assert SCALES["small"] is SMALL
        assert SCALES["medium"] is MEDIUM
        assert SMALL.num_users < MEDIUM.num_users
        config = SMALL.inf2vec_config(epochs=3)
        assert config.epochs == 3 and config.dim == SMALL.dim


class TestClustering:
    def test_kmeans_result_shape(self):
        rng = np.random.default_rng(3)
        points = np.concatenate(
            [rng.normal(0, 0.1, (20, 2)), rng.normal(5, 0.1, (20, 2))]
        )
        result = kmeans(points, num_clusters=2, seed=3)
        assert isinstance(result, KMeansResult)
        assert result.labels.shape == (40,)
        assert result.centroids.shape == (2, 2)
        assert result.inertia >= 0.0
        # The two blobs must separate.
        assert len({int(label) for label in result.labels[:20]}) == 1
        assert result.labels[0] != result.labels[-1]


class TestObservabilityTypes:
    def test_instrument_classes(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("c", "desc"), Counter)
        assert isinstance(registry.gauge("g", "desc"), Gauge)
        assert isinstance(registry.histogram("h", (1.0,), "desc"), Histogram)
        summary = registry.summary("s", DEFAULT_SUMMARY_QUANTILES, "desc")
        assert isinstance(summary, Summary)
        assert all(0.0 < q < 1.0 for q in DEFAULT_SUMMARY_QUANTILES)
        summary.observe(1.0)
        assert summary.quantile(DEFAULT_SUMMARY_QUANTILES[0]) == 1.0

    def test_null_registry_is_disabled(self):
        registry = NullRegistry()
        assert not registry.enabled
        registry.counter("anything", "no-op").inc()  # must not record
        assert registry.snapshot() == {}

    def test_tracer_yields_spans(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", scale="t") as span:
            assert isinstance(span, Span)
        assert isinstance(NullTracer(), NullTracer)
        assert not NullTracer().enabled

    def test_export_filenames_are_stable(self):
        assert MANIFEST_FILENAME == "manifest.json"
        assert TRACE_FILENAME == "trace.jsonl"

    def test_regress_surface(self):
        assert DEFAULT_BASELINE_DIR == "benchmarks/baselines"
        assert set(REPORT_FILES) >= {"BENCH_serving.json", "BENCH_training.json"}
        findings = compare_reports(
            {"a": 1.0},
            {"a": 3.0},
            [MetricPolicy("a", "lower", 0.5)],
            report="X.json",
        )
        assert findings and all(isinstance(f, Finding) for f in findings)
        assert findings[0].regressed


class TestServingConstants:
    def test_index_format_version_round_trips(self, tmp_path):
        indices = np.array([[1, 2], [0, 2], [0, 1]], dtype=np.int64)
        scores = np.array(
            [[2.0, 1.0], [2.0, 1.0], [2.0, 1.0]], dtype=np.float64
        )
        index = TopKIndex("influenced", indices, scores)
        index.save(tmp_path)
        assert INDEX_FORMAT_VERSION == 1
        manifest = (tmp_path / "topk_influenced.json").read_text()
        assert str(INDEX_FORMAT_VERSION) in manifest
        reopened = TopKIndex.open(tmp_path)
        assert np.array_equal(reopened.indices, indices)


class TestCheckpointConstants:
    def test_write_latency_buckets_are_monotone(self):
        assert list(CKPT_WRITE_LATENCY_BUCKETS) == sorted(
            CKPT_WRITE_LATENCY_BUCKETS
        )
        assert CKPT_WRITE_LATENCY_BUCKETS[0] > 0.0


class TestDiffusionConstants:
    def test_paper_num_runs(self):
        # §V: "we run 5000 Monte-Carlo simulations per estimate".
        assert PAPER_NUM_RUNS == 5000
