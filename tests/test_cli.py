"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_experiment_choices_cover_registry(self):
        parser = build_parser()
        args = parser.parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.scale == "small"
        assert args.seed == 0

    def test_all_is_accepted(self):
        args = build_parser().parse_args(["all", "--scale", "medium", "--seed", "7"])
        assert args.experiment == "all"
        assert args.scale == "medium"
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_registry_covers_all_paper_artifacts(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig1-2", "fig3", "table2", "table3", "table4",
            "table5", "fig6", "fig7", "fig8", "fig9", "table6", "sigma",
        }


class TestMain:
    def test_list_flag(self, capsys):
        exit_code = main(["table1", "--list"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "fig9" in out

    def test_runs_single_experiment(self, capsys, monkeypatch):
        calls = []
        # Replace the runner so the test stays fast.
        monkeypatch.setitem(
            EXPERIMENTS,
            "table1",
            (
                "Table I — dataset statistics",
                lambda scale, seed: calls.append((scale, seed)),
            ),
        )
        exit_code = main(["table1", "--scale", "small", "--seed", "3"])
        assert exit_code == 0
        assert calls == [("small", 3)]
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_telemetry_flags_write_manifest_and_trace(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setitem(
            EXPERIMENTS,
            "table1",
            ("Table I — dataset statistics", lambda scale, seed: None),
        )
        metrics_out = tmp_path / "run.json"
        trace_out = tmp_path / "trace.jsonl"
        exit_code = main(
            [
                "table1",
                "--metrics-out", str(metrics_out),
                "--trace-out", str(trace_out),
            ]
        )
        assert exit_code == 0
        capsys.readouterr()

        import json

        manifest = json.loads(metrics_out.read_text())
        assert manifest["name"] == "table1"
        assert manifest["annotations"] == {"scale": "small", "seed": 0}
        assert [s["name"] for s in manifest["spans"]] == ["experiment.table1"]
        rows = [
            json.loads(line) for line in trace_out.read_text().splitlines()
        ]
        assert rows[0]["name"] == "experiment.table1"

    def test_telemetry_dir_exports_exposition_snapshot(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setitem(
            EXPERIMENTS,
            "table1",
            ("Table I — dataset statistics", lambda scale, seed: None),
        )
        telemetry_dir = tmp_path / "tele"
        exit_code = main(
            ["table1", "--telemetry-dir", str(telemetry_dir)]
        )
        assert exit_code == 0
        capsys.readouterr()

        import json

        assert sorted(p.name for p in telemetry_dir.iterdir()) == [
            "manifest.json",
            "metrics.prom",
            "trace.jsonl",
        ]
        manifest = json.loads((telemetry_dir / "manifest.json").read_text())
        assert manifest["name"] == "table1"
        exposition = (telemetry_dir / "metrics.prom").read_text()
        assert exposition == "" or "# TYPE" in exposition

    def test_no_telemetry_flags_no_files(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setitem(
            EXPERIMENTS,
            "table1",
            ("Table I — dataset statistics", lambda scale, seed: None),
        )
        assert main(["table1"]) == 0
        capsys.readouterr()
        assert list(tmp_path.iterdir()) == []


class TestTrainCommand:
    TINY = [
        "train",
        "--num-users", "40",
        "--num-items", "8",
        "--dim", "4",
        "--epochs", "2",
        "--seed", "1",
    ]

    def test_train_args_parse(self):
        args = build_parser().parse_args(
            ["train", "--checkpoint-dir", "d", "--checkpoint-every", "5"]
        )
        assert args.experiment == "train"
        assert args.checkpoint_dir == "d"
        assert args.checkpoint_every == 5
        assert args.checkpoint_keep == 3
        assert not args.resume

    def test_resume_requires_checkpoint_dir(self, capsys):
        with pytest.raises(SystemExit):
            main(["train", "--resume"])
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_end_to_end_train_writes_checkpoints_and_embedding(
        self, capsys, tmp_path
    ):
        ckpt_dir = tmp_path / "ckpts"
        out = tmp_path / "emb.npz"
        exit_code = main(
            self.TINY
            + ["--checkpoint-dir", str(ckpt_dir), "--out", str(out)]
        )
        assert exit_code == 0
        assert "final loss" in capsys.readouterr().out
        assert out.exists()
        assert any(p.name.startswith("ckpt-") for p in ckpt_dir.iterdir())

    def test_train_then_resume_reports_checkpoint(self, capsys, tmp_path):
        ckpt_dir = tmp_path / "ckpts"
        assert main(self.TINY + ["--checkpoint-dir", str(ckpt_dir)]) == 0
        capsys.readouterr()
        assert main(
            self.TINY + ["--checkpoint-dir", str(ckpt_dir), "--resume"]
        ) == 0
        assert "resuming from checkpoint" in capsys.readouterr().out

    def test_train_records_checkpoint_telemetry(self, capsys, tmp_path):
        import json

        metrics_out = tmp_path / "run.json"
        exit_code = main(
            self.TINY
            + [
                "--checkpoint-dir", str(tmp_path / "ckpts"),
                "--metrics-out", str(metrics_out),
            ]
        )
        assert exit_code == 0
        capsys.readouterr()
        counters = json.loads(metrics_out.read_text())["metrics"]
        assert "ckpt.saves" in counters
        assert "ckpt.write_seconds" in counters


class TestInfluenceMaxCommand:
    TINY = [
        "influence-max", "--num-users", "60", "--num-items", "12",
        "--num-seeds", "3", "--eval-runs", "30", "--seed", "1",
    ]

    def test_args_parse_with_defaults(self):
        args = build_parser().parse_args(["influence-max"])
        assert args.method == "ris"
        assert args.preset == "digg"
        assert args.num_seeds == 10

    def test_ris_end_to_end(self, capsys):
        assert main(self.TINY) == 0
        out = capsys.readouterr().out
        assert "ris selected 3 seeds" in out
        assert "MC-evaluated spread" in out

    def test_mc_end_to_end(self, capsys):
        assert main(
            self.TINY
            + ["--method", "mc", "--mc-runs", "10", "--mc-candidates", "15"]
        ) == 0
        out = capsys.readouterr().out
        assert "mc greedy over the 15 highest-out-degree candidates" in out
        assert "mc selected 3 seeds" in out

    def test_ris_pruned_end_to_end(self, capsys):
        assert main(
            self.TINY
            + ["--method", "ris-pruned", "--epochs", "1", "--dim", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "trained pruning embedding" in out
        assert "ris-pruned selected 3 seeds" in out

    def test_flickr_preset_and_no_eval(self, capsys):
        assert main(
            self.TINY + ["--preset", "flickr", "--eval-runs", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "flickr preset" in out
        assert "MC-evaluated" not in out

    def test_same_seed_same_seeds_printed(self, capsys):
        main(self.TINY)
        first = capsys.readouterr().out
        main(self.TINY)
        second = capsys.readouterr().out
        seeds = [l for l in first.splitlines() if l.startswith("  seeds:")]
        assert seeds == [
            l for l in second.splitlines() if l.startswith("  seeds:")
        ]
