"""Unit tests for input-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.5) == 0.5
        assert check_positive("x", 3) == 3.0

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1.0)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            check_positive("x", float("inf"))
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))

    def test_rejects_non_numbers(self):
        with pytest.raises(TypeError):
            check_positive("x", "3")
        with pytest.raises(TypeError):
            check_positive("x", True)


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int("n", 1) == 1
        assert check_positive_int("n", np.int64(5)) == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int("n", 0)

    def test_rejects_float_and_bool(self):
        with pytest.raises(TypeError):
            check_positive_int("n", 1.0)
        with pytest.raises(TypeError):
            check_positive_int("n", True)


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int("n", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int("n", -1)


class TestCheckProbability:
    def test_bounds_inclusive(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.0001)
        with pytest.raises(ValueError):
            check_probability("p", -0.1)


class TestCheckFraction:
    def test_excludes_zero(self):
        with pytest.raises(ValueError):
            check_fraction("f", 0.0)
        assert check_fraction("f", 1.0) == 1.0


class TestCheckInRange:
    def test_inclusive(self):
        assert check_in_range("x", 5, 0, 5) == 5.0

    def test_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range("x", 5, 0, 5, inclusive=False)
        assert check_in_range("x", 4.9, 0, 5, inclusive=False) == 4.9

    def test_error_mentions_bounds(self):
        with pytest.raises(ValueError, match="\\[0, 5\\]"):
            check_in_range("x", 6, 0, 5)
