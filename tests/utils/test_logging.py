"""Unit tests for logging configuration."""

import logging

from repro.utils.logging import PACKAGE_LOGGER_NAME, configure_logging, get_logger


class TestGetLogger:
    def test_namespaced_under_package(self):
        logger = get_logger("core.inf2vec")
        assert logger.name == f"{PACKAGE_LOGGER_NAME}.core.inf2vec"

    def test_already_namespaced_passthrough(self):
        logger = get_logger(f"{PACKAGE_LOGGER_NAME}.eval")
        assert logger.name == f"{PACKAGE_LOGGER_NAME}.eval"


class TestConfigureLogging:
    def test_attaches_stream_handler_once(self):
        root = configure_logging(logging.DEBUG)
        first = [
            h for h in root.handlers if not isinstance(h, logging.NullHandler)
        ]
        configure_logging(logging.DEBUG)
        second = [
            h for h in root.handlers if not isinstance(h, logging.NullHandler)
        ]
        assert len(first) == len(second) == 1
        assert root.level == logging.DEBUG

    def test_null_handler_present_by_default(self):
        root = logging.getLogger(PACKAGE_LOGGER_NAME)
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestLogEpochProgress:
    def _capture(self, level):
        import logging

        from repro.utils.logging import get_logger

        logger = get_logger("tests.epoch_progress")
        logger.setLevel(level)
        records = []

        class _Collector(logging.Handler):
            def emit(self, record):
                records.append(record.getMessage())

        handler = _Collector()
        logger.addHandler(handler)
        return logger, handler, records

    def test_formats_loss_elapsed_and_extras(self):
        import logging

        from repro.utils.logging import log_epoch_progress

        logger, handler, records = self._capture(logging.DEBUG)
        try:
            log_epoch_progress(
                logger, 2, 10, loss=0.5, elapsed=1.25, lr="0.02"
            )
        finally:
            logger.removeHandler(handler)
        assert records == ["epoch 3/10: loss=0.500000 elapsed=1.25s lr=0.02"]

    def test_silent_unless_debug_enabled(self):
        import logging

        from repro.utils.logging import log_epoch_progress

        logger, handler, records = self._capture(logging.INFO)
        try:
            log_epoch_progress(logger, 0, 1, loss=1.0)
        finally:
            logger.removeHandler(handler)
        assert records == []

    def test_no_fields_reads_done(self):
        import logging

        from repro.utils.logging import log_epoch_progress

        logger, handler, records = self._capture(logging.DEBUG)
        try:
            log_epoch_progress(logger, 0, 2)
        finally:
            logger.removeHandler(handler)
        assert records == ["epoch 1/2: done"]
