"""Unit tests for logging configuration."""

import logging

from repro.utils.logging import PACKAGE_LOGGER_NAME, configure_logging, get_logger


class TestGetLogger:
    def test_namespaced_under_package(self):
        logger = get_logger("core.inf2vec")
        assert logger.name == f"{PACKAGE_LOGGER_NAME}.core.inf2vec"

    def test_already_namespaced_passthrough(self):
        logger = get_logger(f"{PACKAGE_LOGGER_NAME}.eval")
        assert logger.name == f"{PACKAGE_LOGGER_NAME}.eval"


class TestConfigureLogging:
    def test_attaches_stream_handler_once(self):
        root = configure_logging(logging.DEBUG)
        first = [
            h for h in root.handlers if not isinstance(h, logging.NullHandler)
        ]
        configure_logging(logging.DEBUG)
        second = [
            h for h in root.handlers if not isinstance(h, logging.NullHandler)
        ]
        assert len(first) == len(second) == 1
        assert root.level == logging.DEBUG

    def test_null_handler_present_by_default(self):
        root = logging.getLogger(PACKAGE_LOGGER_NAME)
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)
