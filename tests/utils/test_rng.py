"""Unit tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_numpy_integer_accepted(self):
        seed = np.int64(7)
        a = ensure_rng(seed).random(3)
        b = ensure_rng(7).random(3)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng("not a seed")  # type: ignore[arg-type]


class TestSpawn:
    def test_spawn_count(self):
        children = spawn_rngs(0, 3)
        assert len(children) == 3

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
