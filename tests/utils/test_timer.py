"""Unit tests for timing helpers."""

import time

from repro.utils.timer import Timer, timed


class TestTimer:
    def test_accumulates_intervals(self):
        timer = Timer()
        for _ in range(3):
            with timer.measure():
                time.sleep(0.001)
        assert timer.intervals == 3
        assert timer.elapsed >= 0.003
        assert timer.mean >= 0.001

    def test_mean_of_fresh_timer_zero(self):
        assert Timer().mean == 0.0

    def test_reset(self):
        timer = Timer()
        with timer.measure():
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.intervals == 0

    def test_records_on_exception(self):
        timer = Timer()
        try:
            with timer.measure():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timer.intervals == 1


class TestTimed:
    def test_returns_result_and_duration(self):
        result, seconds = timed(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0.0
