"""Unit tests for timing helpers."""

import time

from repro.utils.timer import Timer, timed


class TestTimer:
    def test_accumulates_intervals(self):
        timer = Timer()
        for _ in range(3):
            with timer.measure():
                time.sleep(0.001)
        assert timer.intervals == 3
        assert timer.elapsed >= 0.003
        assert timer.mean >= 0.001

    def test_mean_of_fresh_timer_zero(self):
        assert Timer().mean == 0.0

    def test_reset(self):
        timer = Timer()
        with timer.measure():
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.intervals == 0

    def test_records_on_exception(self):
        timer = Timer()
        try:
            with timer.measure():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timer.intervals == 1


class TestTimed:
    def test_returns_result_and_duration(self):
        result, seconds = timed(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0.0


class TestMerge:
    def test_merge_accumulates_both_fields(self):
        a = Timer(elapsed=1.5, intervals=3)
        b = Timer(elapsed=0.5, intervals=1)
        assert a.merge(b) is a
        assert a.elapsed == 2.0
        assert a.intervals == 4
        # The merged-in timer is untouched.
        assert b.elapsed == 0.5
        assert b.intervals == 1

    def test_merge_preserves_mean_semantics(self):
        a = Timer(elapsed=4.0, intervals=2)
        a.merge(Timer(elapsed=2.0, intervals=2))
        assert a.mean == 1.5

    def test_merge_empty_is_identity(self):
        a = Timer(elapsed=1.0, intervals=1)
        a.merge(Timer())
        assert (a.elapsed, a.intervals) == (1.0, 1)
