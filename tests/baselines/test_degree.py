"""Unit tests for the DE baseline."""

import pytest

from repro.baselines.degree import DegreeModel
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.errors import NotFittedError


class TestDegreeModel:
    def test_probability_is_inverse_indegree(self, tiny_graph, tiny_log):
        model = DegreeModel().fit(tiny_graph, tiny_log)
        probs = model.edge_probabilities()
        # node 0 has in-neighbours {2, 3}: indegree 2.
        assert probs.get(2, 0) == pytest.approx(0.5)
        assert probs.get(3, 0) == pytest.approx(0.5)
        # node 4 has indegree 1.
        assert probs.get(3, 4) == pytest.approx(1.0)

    def test_ignores_action_log(self, tiny_graph, tiny_log):
        empty = ActionLog([], num_users=5)
        a = DegreeModel().fit(tiny_graph, tiny_log).edge_probabilities()
        b = DegreeModel().fit(tiny_graph, empty).edge_probabilities()
        assert a.values.tolist() == b.values.tolist()

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DegreeModel().edge_probabilities()
        with pytest.raises(NotFittedError):
            DegreeModel().predictor()

    def test_predictor_activation(self, tiny_graph, tiny_log):
        model = DegreeModel().fit(tiny_graph, tiny_log)
        predictor = model.predictor(num_runs=10, seed=0)
        score = predictor.activation_score(0, [2, 3])
        # Eq. 8: 1 - (1-0.5)(1-0.5) = 0.75
        assert score == pytest.approx(0.75)

    def test_name(self):
        assert DegreeModel.name == "DE"

    def test_fit_returns_self(self, tiny_graph, tiny_log):
        model = DegreeModel()
        assert model.fit(tiny_graph, tiny_log) is model
        assert model.is_fitted
