"""Unit tests for the MF (BPR) baseline."""

import numpy as np
import pytest

from repro.baselines.mf import MFModel
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import NotFittedError, TrainingError


@pytest.fixture
def graph() -> SocialGraph:
    return SocialGraph(6, [(0, 1)])


@pytest.fixture
def co_action_log() -> ActionLog:
    """Users {0,1,2} always co-act; users {3,4,5} never act."""
    episodes = [
        DiffusionEpisode(i, [(0, 1.0), (1, 2.0), (2, 3.0)]) for i in range(8)
    ]
    return ActionLog(episodes, num_users=6)


class TestMFModel:
    def test_co_actors_outscore_non_actors(self, graph, co_action_log):
        model = MFModel(dim=8, epochs=20, seed=0).fit(graph, co_action_log)
        emb = model.embedding()
        assert emb.score(0, 1) > emb.score(0, 4)
        assert emb.score(1, 2) > emb.score(1, 5)

    def test_biases_zero(self, graph, co_action_log):
        model = MFModel(dim=4, epochs=2, seed=0).fit(graph, co_action_log)
        emb = model.embedding()
        assert np.all(emb.source_bias == 0)
        assert np.all(emb.target_bias == 0)

    def test_co_action_counts(self, graph, co_action_log):
        model = MFModel(dim=4, epochs=1, seed=0).fit(graph, co_action_log)
        assert model.co_action_count(0) == 2
        assert model.co_action_count(3) == 0

    def test_empty_log_keeps_random_factors(self, graph):
        model = MFModel(dim=4, epochs=2, seed=0).fit(
            graph, ActionLog([], num_users=6)
        )
        assert model.is_fitted
        assert model.embedding().num_users == 6

    def test_pair_sampling_cap(self, graph):
        episode = DiffusionEpisode(0, [(u, float(u)) for u in range(6)])
        log = ActionLog([episode], num_users=6)
        model = MFModel(dim=4, epochs=1, max_pairs_per_episode=5, seed=0)
        pairs = model._co_action_pairs(log)
        assert pairs.shape[0] <= 5

    def test_deterministic_under_seed(self, graph, co_action_log):
        a = MFModel(dim=4, epochs=2, seed=3).fit(graph, co_action_log)
        b = MFModel(dim=4, epochs=2, seed=3).fit(graph, co_action_log)
        assert np.array_equal(a.embedding().source, b.embedding().source)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MFModel(dim=0)
        with pytest.raises(TrainingError):
            MFModel(regularization=-0.1)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MFModel().embedding()
