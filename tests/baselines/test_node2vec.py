"""Unit tests for the Node2vec baseline."""

import numpy as np
import pytest

from repro.baselines.node2vec import Node2vecModel, biased_walk, walk_contexts
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.errors import NotFittedError
from repro.utils.rng import ensure_rng


@pytest.fixture
def graph() -> SocialGraph:
    # Two communities joined by one bridge.
    edges = [(0, 1), (1, 0), (1, 2), (2, 0), (0, 2)]
    edges += [(3, 4), (4, 3), (4, 5), (5, 3), (3, 5)]
    edges += [(2, 3)]
    return SocialGraph(6, edges)


class TestBiasedWalk:
    def test_walk_length(self, graph):
        walk = biased_walk(graph, 0, 10, p=1.0, q=1.0, rng=ensure_rng(0))
        assert len(walk) == 10
        assert walk[0] == 0

    def test_walk_follows_edges(self, graph):
        walk = biased_walk(graph, 0, 20, p=1.0, q=1.0, rng=ensure_rng(0))
        for a, b in zip(walk, walk[1:]):
            assert graph.has_edge(a, b)

    def test_sink_ends_walk(self):
        chain = SocialGraph(3, [(0, 1), (1, 2)])
        walk = biased_walk(chain, 0, 10, p=1.0, q=1.0, rng=ensure_rng(0))
        assert walk == [0, 1, 2]

    def test_low_p_returns_often(self, graph):
        rng = ensure_rng(0)
        returns = 0
        for _ in range(50):
            walk = biased_walk(graph, 0, 3, p=0.01, q=1.0, rng=rng)
            if len(walk) == 3 and walk[2] == walk[0]:
                returns += 1
        rng = ensure_rng(0)
        returns_high_p = 0
        for _ in range(50):
            walk = biased_walk(graph, 0, 3, p=100.0, q=1.0, rng=rng)
            if len(walk) == 3 and walk[2] == walk[0]:
                returns_high_p += 1
        assert returns > returns_high_p


class TestWalkContexts:
    def test_window(self):
        contexts = walk_contexts([1, 2, 3, 4], window=1)
        by_user = {c.user: c.local for c in contexts}
        assert by_user[1] == (2,)
        assert by_user[2] == (1, 3)
        assert by_user[4] == (3,)

    def test_no_global_component(self):
        contexts = walk_contexts([1, 2], window=2)
        assert all(c.global_ == () for c in contexts)

    def test_single_node_walk_empty(self):
        assert walk_contexts([7], window=2) == []


class TestNode2vecModel:
    def test_community_structure_learned(self, graph):
        log = ActionLog([], num_users=6)
        model = Node2vecModel(
            dim=8, walks_per_node=10, walk_length=10, window=3, epochs=5,
            learning_rate=0.05, seed=0,
        ).fit(graph, log)
        emb = model.embedding()
        # Same-community scores exceed cross-community scores on average.
        within = np.mean([emb.score(0, 1), emb.score(1, 2), emb.score(3, 4)])
        across = np.mean([emb.score(0, 4), emb.score(1, 5), emb.score(5, 0)])
        assert within > across

    def test_biases_disabled(self, graph):
        log = ActionLog([], num_users=6)
        model = Node2vecModel(dim=4, epochs=1, seed=0).fit(graph, log)
        emb = model.embedding()
        assert np.all(emb.source_bias == 0)
        assert np.all(emb.target_bias == 0)

    def test_generate_walks_count(self, graph):
        model = Node2vecModel(walks_per_node=2, walk_length=5, seed=0)
        walks = model.generate_walks(graph)
        # Every node has out-edges, so all 6 * 2 walks have length > 1.
        assert len(walks) == 12

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            Node2vecModel().embedding()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Node2vecModel(p=0.0)
        with pytest.raises(ValueError):
            Node2vecModel(walk_length=0)
