"""Unit tests for the Emb-IC (embedded cascade) baseline."""

import numpy as np
import pytest

from repro.baselines.emb_ic import EmbICModel
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import NotFittedError


@pytest.fixture
def graph() -> SocialGraph:
    return SocialGraph(6, [(0, 1), (1, 2), (3, 4), (0, 2)])


@pytest.fixture
def log() -> ActionLog:
    """0 repeatedly propagates to 1 then 2; users 3-5 inactive."""
    episodes = [
        DiffusionEpisode(i, [(0, 1.0), (1, 2.0), (2, 3.0)]) for i in range(10)
    ]
    return ActionLog(episodes, num_users=6)


class TestEmbICModel:
    def test_propagating_pairs_get_higher_probability(self, graph, log):
        model = EmbICModel(dim=4, em_iterations=4, seed=0).fit(graph, log)
        p_in_cascade = model.probability(0, 1)
        p_never = model.probability(0, 5)
        assert p_in_cascade > p_never

    def test_probability_in_unit_interval(self, graph, log):
        model = EmbICModel(dim=4, em_iterations=2, seed=0).fit(graph, log)
        for u in range(6):
            for v in range(6):
                if u != v:
                    assert 0.0 <= model.probability(u, v) <= 1.0

    def test_edge_probabilities_on_graph(self, graph, log):
        model = EmbICModel(dim=4, em_iterations=2, seed=0).fit(graph, log)
        probs = model.edge_probabilities()
        assert probs.values.shape == (graph.num_edges,)
        assert probs.get(0, 1) == pytest.approx(model.probability(0, 1))

    def test_representations_shape(self, graph, log):
        model = EmbICModel(dim=4, em_iterations=1, seed=0).fit(graph, log)
        sender, receiver = model.representations()
        assert sender.shape == (6, 4)
        assert receiver.shape == (6, 4)

    def test_empty_log(self, graph):
        model = EmbICModel(dim=4, seed=0).fit(graph, ActionLog([], num_users=6))
        assert model.is_fitted

    def test_max_influencers_cap(self, graph):
        episode = DiffusionEpisode(0, [(u, float(u)) for u in range(6)])
        log = ActionLog([episode], num_users=6)
        model = EmbICModel(dim=2, max_influencers=2, seed=0)
        pos_case, pos_sender, pos_receiver, _, num_cases = model._collect_cases(log)
        # Every non-first adopter has at most 2 influencers.
        counts = np.bincount(pos_case, minlength=num_cases)
        assert counts.max() <= 2

    def test_exhaustive_failures_enumerate_non_adopters(self, graph):
        episode = DiffusionEpisode(0, [(0, 1.0), (1, 2.0)])
        log = ActionLog([episode], num_users=6)
        model = EmbICModel(dim=2, exhaustive_failures=True, seed=0)
        _, _, _, failed, _ = model._collect_cases(log)
        # 2 adopters x 4 non-adopters = 8 failed transmissions.
        assert failed.shape == (8, 2)
        senders = set(failed[:, 0].tolist())
        receivers = set(failed[:, 1].tolist())
        assert senders == {0, 1}
        assert receivers == {2, 3, 4, 5}

    def test_exhaustive_mode_trains(self, graph, log):
        model = EmbICModel(
            dim=2, em_iterations=1, exhaustive_failures=True, seed=0
        ).fit(graph, log)
        assert model.is_fitted

    def test_deterministic_under_seed(self, graph, log):
        a = EmbICModel(dim=4, em_iterations=2, seed=9).fit(graph, log)
        b = EmbICModel(dim=4, em_iterations=2, seed=9).fit(graph, log)
        assert a.probability(0, 1) == pytest.approx(b.probability(0, 1))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            EmbICModel().edge_probabilities()
        with pytest.raises(NotFittedError):
            EmbICModel().probability(0, 1)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            EmbICModel(dim=0)
        with pytest.raises(ValueError):
            EmbICModel(learning_rate=0)
