"""Unit tests for the method registry and the Inf2vec wrappers."""

import pytest

from repro.baselines import (
    METHOD_ORDER,
    DegreeModel,
    EMModel,
    EmbICModel,
    Inf2vecLocalMethod,
    Inf2vecMethod,
    MFModel,
    Node2vecModel,
    StaticModel,
    make_method,
)
from repro.core.inf2vec import Inf2vecConfig
from repro.errors import NotFittedError, TrainingError


class TestRegistry:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("DE", DegreeModel),
            ("ST", StaticModel),
            ("EM", EMModel),
            ("Emb-IC", EmbICModel),
            ("MF", MFModel),
            ("Node2vec", Node2vecModel),
            ("Inf2vec", Inf2vecMethod),
            ("Inf2vec-L", Inf2vecLocalMethod),
        ],
    )
    def test_lookup(self, name, cls):
        assert isinstance(make_method(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_method("inf2VEC"), Inf2vecMethod)

    def test_unknown_rejected(self):
        with pytest.raises(TrainingError, match="unknown method"):
            make_method("GPT")

    def test_kwargs_forwarded(self):
        model = make_method("MF", dim=7)
        assert model.dim == 7

    def test_method_order_covers_paper_tables(self):
        assert METHOD_ORDER == (
            "DE", "ST", "EM", "Emb-IC", "MF", "Node2vec", "Inf2vec",
        )


class TestInf2vecWrappers:
    def test_local_variant_forces_alpha_one(self):
        method = Inf2vecLocalMethod(Inf2vecConfig(dim=4))
        assert method.config.context.alpha == 1.0
        assert method.name == "Inf2vec-L"

    def test_full_variant_keeps_alpha(self):
        method = Inf2vecMethod(Inf2vecConfig(dim=4))
        assert method.config.context.alpha == 0.1

    def test_fit_and_predict(self, small_dataset, small_splits):
        train, _tune, _test = small_splits
        config = Inf2vecConfig(dim=4, epochs=2)
        method = Inf2vecMethod(config, seed=0).fit(small_dataset.graph, train)
        predictor = method.predictor()
        score = predictor.activation_score(0, [1])
        assert isinstance(score, float)

    def test_unfitted_predictor_raises(self):
        with pytest.raises(NotFittedError):
            Inf2vecMethod(Inf2vecConfig(dim=4)).predictor()

    def test_repr_shows_state(self):
        method = Inf2vecMethod(Inf2vecConfig(dim=4))
        assert "unfitted" in repr(method)
