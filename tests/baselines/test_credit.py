"""Unit tests for the Credit Distribution baseline."""

import pytest

from repro.baselines.credit import CreditDistributionModel
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import EvaluationError, NotFittedError


@pytest.fixture
def chain_graph() -> SocialGraph:
    return SocialGraph(4, [(0, 1), (1, 2), (2, 3)])


class TestDirectCredit:
    def test_single_influencer_full_credit(self, chain_graph):
        log = ActionLog(
            [
                DiffusionEpisode(0, [(0, 1.0), (1, 2.0)]),
                DiffusionEpisode(1, [(1, 1.0)]),
            ],
            num_users=4,
        )
        model = CreditDistributionModel().fit(chain_graph, log)
        # u=0 influenced v=1 once; v took 2 actions total: kappa = 1/2.
        assert model.credit(0, 1) == pytest.approx(0.5)

    def test_credit_split_among_influencers(self):
        graph = SocialGraph(3, [(0, 2), (1, 2)])
        log = ActionLog(
            [DiffusionEpisode(0, [(0, 1.0), (1, 2.0), (2, 3.0)])], num_users=3
        )
        model = CreditDistributionModel().fit(graph, log)
        # Both friends active before 2: each gets 1/2 of one action.
        assert model.credit(0, 2) == pytest.approx(0.5)
        assert model.credit(1, 2) == pytest.approx(0.5)

    def test_unobserved_pair_zero(self, chain_graph):
        log = ActionLog([DiffusionEpisode(0, [(0, 1.0)])], num_users=4)
        model = CreditDistributionModel().fit(chain_graph, log)
        assert model.credit(0, 1) == 0.0


class TestPropagatedCredit:
    def test_second_order_chain(self, chain_graph):
        """0 -> 1 -> 2 in one episode gives 0 credit on 2 (depth 2)."""
        log = ActionLog(
            [DiffusionEpisode(0, [(0, 1.0), (1, 2.0), (2, 3.0)])], num_users=4
        )
        model = CreditDistributionModel(max_depth=2).fit(chain_graph, log)
        # Direct: gamma_01 = 1, gamma_12 = 1; propagated Gamma_02 = 1.
        # Normalised by A_2 = 1 action.
        assert model.credit(0, 2) == pytest.approx(1.0)

    def test_depth_one_has_no_second_order(self, chain_graph):
        log = ActionLog(
            [DiffusionEpisode(0, [(0, 1.0), (1, 2.0), (2, 3.0)])], num_users=4
        )
        model = CreditDistributionModel(max_depth=1).fit(chain_graph, log)
        assert model.credit(0, 2) == 0.0
        assert model.credit(0, 1) == pytest.approx(1.0)

    def test_third_order_requires_depth_three(self, chain_graph):
        log = ActionLog(
            [
                DiffusionEpisode(
                    0, [(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]
                )
            ],
            num_users=4,
        )
        shallow = CreditDistributionModel(max_depth=2).fit(chain_graph, log)
        deep = CreditDistributionModel(max_depth=3).fit(chain_graph, log)
        assert shallow.credit(0, 3) == 0.0
        assert deep.credit(0, 3) == pytest.approx(1.0)


class TestPrediction:
    @pytest.fixture
    def model(self, chain_graph):
        log = ActionLog(
            [
                DiffusionEpisode(i, [(0, 1.0), (1, 2.0), (2, 3.0)])
                for i in range(3)
            ],
            num_users=4,
        )
        return CreditDistributionModel().fit(chain_graph, log)

    def test_activation_score_sums_credit(self, model):
        predictor = model.predictor()
        assert predictor.activation_score(1, [0]) == pytest.approx(1.0)
        assert predictor.activation_score(3, [2]) == 0.0

    def test_activation_score_capped(self, model):
        predictor = model.predictor()
        assert predictor.activation_score(2, [0, 1]) <= 1.0

    def test_activation_requires_friends(self, model):
        with pytest.raises(EvaluationError):
            model.predictor().activation_score(1, [])

    def test_diffusion_scores_propagate(self, model):
        scores = model.predictor().diffusion_scores([0])
        assert scores[0] == 1.0
        assert scores[1] > 0.0
        assert scores[2] > 0.0  # second-order reach
        assert scores[3] == 0.0  # never influenced in training

    def test_diffusion_requires_seeds(self, model):
        with pytest.raises(EvaluationError):
            model.predictor().diffusion_scores([])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            CreditDistributionModel().predictor()

    def test_registry_lookup(self):
        from repro.baselines import make_method

        assert isinstance(make_method("CD"), CreditDistributionModel)
