"""Unit tests for the ST (Goyal MLE) baseline."""

import pytest

from repro.baselines.static import StaticModel
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import NotFittedError, TrainingError


@pytest.fixture
def graph() -> SocialGraph:
    return SocialGraph(3, [(0, 1), (1, 2)])


@pytest.fixture
def log() -> ActionLog:
    # Episode 0: 0 then 1 (success on edge 0->1).
    # Episode 1: 0 adopts alone (failed trial for 0->1).
    # Episode 2: 1 then 2 (success on edge 1->2).
    return ActionLog(
        [
            DiffusionEpisode(0, [(0, 1.0), (1, 2.0)]),
            DiffusionEpisode(1, [(0, 1.0)]),
            DiffusionEpisode(2, [(1, 1.0), (2, 2.0)]),
        ],
        num_users=3,
    )


class TestStaticModel:
    def test_mle_counts(self, graph, log):
        model = StaticModel().fit(graph, log)
        # A_{0->1} = 1, A_0 = 2  ->  P = 0.5
        assert model.edge_probabilities().get(0, 1) == pytest.approx(0.5)
        # A_{1->2} = 1, A_1 = 2  ->  P = 0.5
        assert model.edge_probabilities().get(1, 2) == pytest.approx(0.5)

    def test_counters_exposed(self, graph, log):
        model = StaticModel().fit(graph, log)
        assert model.success_count(0, 1) == 1
        assert model.success_count(1, 2) == 1
        assert model.trial_count(0) == 2
        assert model.trial_count(1) == 2
        assert model.trial_count(2) == 1

    def test_unobserved_edge_zero(self, graph):
        log = ActionLog([DiffusionEpisode(0, [(2, 1.0)])], num_users=3)
        model = StaticModel().fit(graph, log)
        assert model.edge_probabilities().get(0, 1) == 0.0

    def test_inactive_user_zero_probability(self, graph):
        log = ActionLog([], num_users=3)
        model = StaticModel().fit(graph, log)
        assert model.edge_probabilities().get(0, 1) == 0.0

    def test_smoothing(self, graph, log):
        model = StaticModel(smoothing=1.0).fit(graph, log)
        # (1 + 1) / (2 + 2) = 0.5 for observed; (0+1)/(1+2) for unobserved
        assert model.edge_probabilities().get(0, 1) == pytest.approx(0.5)

    def test_negative_smoothing_rejected(self):
        with pytest.raises(TrainingError):
            StaticModel(smoothing=-1.0)

    def test_probability_capped_at_one(self, graph):
        # Same success observed more often than trials cannot happen,
        # but the cap also protects smoothing corner cases.
        log = ActionLog(
            [DiffusionEpisode(0, [(0, 1.0), (1, 2.0)])], num_users=3
        )
        model = StaticModel().fit(graph, log)
        assert model.edge_probabilities().get(0, 1) <= 1.0

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StaticModel().edge_probabilities()
        with pytest.raises(NotFittedError):
            StaticModel().success_count(0, 1)
