"""Unit tests for the EM (Saito) baseline."""

import pytest

from repro.baselines.em_ic import EMModel
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import NotFittedError, TrainingError


@pytest.fixture
def graph() -> SocialGraph:
    return SocialGraph(3, [(0, 1), (1, 2)])


class TestEMModel:
    def test_single_influencer_converges_to_frequency(self, graph):
        """With one possible influencer, EM reduces to the MLE ratio."""
        episodes = [
            DiffusionEpisode(0, [(0, 1.0), (1, 2.0)]),  # success
            DiffusionEpisode(1, [(0, 1.0)]),  # failure
            DiffusionEpisode(2, [(0, 1.0), (1, 2.0)]),  # success
            DiffusionEpisode(3, [(0, 1.0)]),  # failure
        ]
        log = ActionLog(episodes, num_users=3)
        model = EMModel(max_iterations=50).fit(graph, log)
        assert model.edge_probabilities().get(0, 1) == pytest.approx(0.5, abs=1e-3)

    def test_credit_split_between_influencers(self):
        """Two always-co-active influencers share responsibility."""
        graph = SocialGraph(3, [(0, 2), (1, 2)])
        episodes = [
            DiffusionEpisode(i, [(0, 1.0), (1, 2.0), (2, 3.0)]) for i in range(4)
        ]
        log = ActionLog(episodes, num_users=3)
        model = EMModel(max_iterations=100).fit(graph, log)
        p_02 = model.edge_probabilities().get(0, 2)
        p_12 = model.edge_probabilities().get(1, 2)
        # Symmetric evidence -> symmetric probabilities; joint success
        # probability must explain every observation: 1-(1-p)^2 ~ 1.
        assert p_02 == pytest.approx(p_12, abs=1e-6)
        assert 1 - (1 - p_02) * (1 - p_12) > 0.9

    def test_no_trials_edge_stays_zero(self, graph):
        log = ActionLog([DiffusionEpisode(0, [(2, 1.0)])], num_users=3)
        model = EMModel().fit(graph, log)
        assert model.edge_probabilities().get(0, 1) == 0.0

    def test_pure_failures_drive_probability_down(self, graph):
        episodes = [DiffusionEpisode(i, [(0, float(i))]) for i in range(5)]
        log = ActionLog(episodes, num_users=3)
        model = EMModel(max_iterations=30).fit(graph, log)
        assert model.edge_probabilities().get(0, 1) == pytest.approx(0.0, abs=1e-6)

    def test_early_stopping(self, graph):
        log = ActionLog(
            [DiffusionEpisode(0, [(0, 1.0), (1, 2.0)])], num_users=3
        )
        model = EMModel(max_iterations=50, tolerance=1e-3).fit(graph, log)
        assert model.iterations_run < 50

    def test_empty_log(self, graph):
        model = EMModel().fit(graph, ActionLog([], num_users=3))
        assert model.edge_probabilities().get(0, 1) == 0.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            EMModel(max_iterations=0)
        with pytest.raises(TrainingError):
            EMModel(tolerance=-1.0)
        with pytest.raises(TrainingError):
            EMModel(initial_probability=0.0)
        with pytest.raises(ValueError):
            EMModel(initial_probability=1.5)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            EMModel().edge_probabilities()

    def test_probabilities_stay_in_range(self, graph, small_dataset, small_splits):
        train, _, _ = small_splits
        model = EMModel(max_iterations=10).fit(small_dataset.graph, train)
        values = model.edge_probabilities().values
        assert values.min() >= 0.0
        assert values.max() <= 1.0
