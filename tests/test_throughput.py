"""Throughput smoke test for the batched training engine.

Marked ``slow`` and deselected by default (see ``pyproject.toml``);
run with ``pytest -m slow``.  The full-scale measurement lives in
``benchmarks/bench_training_throughput.py`` and persists its report to
``BENCH_training.json``.
"""

import pytest

from repro.core.context import ContextConfig, ContextGenerator
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.data.synthetic import SyntheticSocialDataset
from repro.utils.timer import timed

pytestmark = pytest.mark.slow


def test_batched_engine_outperforms_sequential_smoke():
    data = SyntheticSocialDataset.digg_like(
        num_users=600, num_items=120, seed=7
    )
    config = Inf2vecConfig(
        dim=16, context=ContextConfig(length=30, alpha=0.1), epochs=1
    )

    seq_corpus, seq_context = timed(
        lambda: ContextGenerator(
            data.graph, config.context, seed=0, batched=False
        ).generate(data.log)
    )
    corpus, bat_context = timed(
        lambda: ContextGenerator(
            data.graph, config.context, seed=0, batched=True
        ).generate(data.log)
    )
    assert len(corpus) == len(seq_corpus)

    seq_model = Inf2vecModel(config, seed=0)
    seq_model.fit_contexts(corpus[:1], num_users=data.graph.num_nodes)
    _, seq_train = timed(lambda: seq_model.train_epoch_sequential(corpus))

    bat_model = Inf2vecModel(config, seed=0)
    bat_model.fit_contexts(corpus[:1], num_users=data.graph.num_nodes)
    _, bat_train = timed(lambda: bat_model.train_epoch(corpus))

    # Smoke thresholds are deliberately loose — the committed
    # BENCH_training.json records the real (>= 3x) margins at scale.
    assert bat_context < seq_context, (seq_context, bat_context)
    assert bat_train < seq_train, (seq_train, bat_train)
